(* Tests for the RTL IR, elaboration, the simulator, memories and graph
   transforms. *)

module Signal = Rtl.Signal
module Circuit = Rtl.Circuit
open Signal

let bv = Alcotest.testable Bitvec.pp Bitvec.equal

(* An 8-bit counter with enable and synchronous clear. *)
let counter_circuit () =
  let enable = input "enable" 1 in
  let clear = input "clear" 1 in
  let count = reg "count" 8 in
  reg_set_next count (mux2 clear (zero 8) (mux2 enable (count +: one 8) count));
  Circuit.create ~name:"counter" ~outputs:[ ("count", count) ] ()

let test_counter () =
  let c = counter_circuit () in
  let s = Sim.create c in
  Alcotest.(check int) "initial" 0 (Sim.out_int s "count");
  Sim.set_input_int s "enable" 1;
  Sim.step s;
  Sim.step s;
  Sim.step s;
  Alcotest.(check int) "after 3 enabled steps" 3 (Sim.out_int s "count");
  Sim.set_input_int s "enable" 0;
  Sim.step s;
  Alcotest.(check int) "hold" 3 (Sim.out_int s "count");
  Sim.set_input_int s "clear" 1;
  Sim.step s;
  Alcotest.(check int) "cleared" 0 (Sim.out_int s "count");
  Sim.reset s;
  Alcotest.(check int) "reset" 0 (Sim.out_int s "count");
  Alcotest.(check int) "cycle resets" 0 (Sim.cycle s)

let test_elaboration_errors () =
  (* Register without a next. *)
  let r = reg "dangling" 4 in
  Alcotest.(check bool) "missing next" true
    (try
       ignore (Circuit.create ~name:"bad" ~outputs:[ ("o", r) ] ());
       false
     with Failure _ -> true);
  (* Combinational loop through a mux. *)
  Alcotest.(check bool) "comb loop" true
    (try
       let r2 = reg "r2" 1 in
       (* Build a cycle: x = x & r2 is impossible to construct directly
          because signals are immutable, so thread it via a register next
          chain that references a slice of itself... instead use two nodes
          where we cheat with reg_set_next to create a legal graph and a
          loop through combinational nodes only cannot be expressed. Check
          instead that duplicate output names are rejected. *)
       reg_set_next r2 (input "i" 1);
       ignore
         (Circuit.create ~name:"dup" ~outputs:[ ("o", r2); ("o", r2) ] ());
       false
     with Failure _ -> true)

let test_width_checks () =
  Alcotest.(check bool) "add mismatch" true
    (try ignore (input "x" 4 +: input "y" 5); false with Invalid_argument _ -> true);
  Alcotest.(check bool) "mux sel width" true
    (try ignore (mux2 (input "s" 2) (zero 4) (zero 4)); false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "bad slice" true
    (try ignore (select (zero 4) 4 0); false with Invalid_argument _ -> true)

let test_constant_folding () =
  let check_const name expect s =
    match Signal.op s with
    | Signal.Const v -> Alcotest.(check int) name expect (Bitvec.to_int v)
    | _ -> Alcotest.failf "%s: expected constant folding" name
  in
  check_const "add" 5 (of_int ~width:8 2 +: of_int ~width:8 3);
  check_const "and" 2 (of_int ~width:4 3 &: of_int ~width:4 6);
  check_const "mux" 7 (mux2 vdd (of_int ~width:4 7) (of_int ~width:4 1));
  check_const "slice" 0xA (select (of_int ~width:8 0xAB) 7 4);
  check_const "concat" 0xAB (concat [ of_int ~width:4 0xA; of_int ~width:4 0xB ])

(* mux over a case list must match list indexing with clamping. *)
let test_mux_semantics () =
  let sel = input "sel" 3 in
  let cases = List.init 5 (fun i -> of_int ~width:8 (10 + i)) in
  let c = Circuit.create ~name:"m" ~outputs:[ ("o", mux sel cases) ] () in
  let s = Sim.create c in
  for v = 0 to 7 do
    Sim.set_input_int s "sel" v;
    let expect = 10 + min v 4 in
    Alcotest.(check int) (Printf.sprintf "mux sel=%d" v) expect (Sim.out_int s "o")
  done

let test_shifts () =
  let a = input "a" 8 and k = input "k" 3 in
  let c =
    Circuit.create ~name:"sh"
      ~outputs:
        [
          ("sll", log_shift_left a k);
          ("srl", log_shift_right a k);
          ("csll", sll a 3);
          ("csrl", srl a 3);
        ]
      ()
  in
  let s = Sim.create c in
  Sim.set_input_int s "a" 0b11001010;
  for v = 0 to 7 do
    Sim.set_input_int s "k" v;
    Alcotest.(check int) "dyn sll" (0b11001010 lsl v land 0xFF) (Sim.out_int s "sll");
    Alcotest.(check int) "dyn srl" (0b11001010 lsr v) (Sim.out_int s "srl")
  done;
  Alcotest.(check int) "const sll" (0b11001010 lsl 3 land 0xFF) (Sim.out_int s "csll");
  Alcotest.(check int) "const srl" (0b11001010 lsr 3) (Sim.out_int s "csrl")

let test_mem () =
  let waddr = input "waddr" 2 and wdata = input "wdata" 8 in
  let wen = input "wen" 1 and raddr = input "raddr" 2 in
  let clear = input "clear" 1 in
  let m = Rtl.Mem.create ~name:"m" ~size:4 ~width:8 () in
  Rtl.Mem.write m ~enable:wen ~addr:waddr ~data:wdata;
  Rtl.Mem.finalize ~clear m;
  let c = Circuit.create ~name:"mem" ~outputs:[ ("rdata", Rtl.Mem.read m raddr) ] () in
  let s = Sim.create c in
  Sim.set_input_int s "wen" 1;
  Sim.set_input_int s "waddr" 2;
  Sim.set_input_int s "wdata" 0x5A;
  Sim.step s;
  Sim.set_input_int s "wen" 0;
  Sim.set_input_int s "raddr" 2;
  Alcotest.(check int) "read back" 0x5A (Sim.out_int s "rdata");
  Sim.set_input_int s "raddr" 1;
  Alcotest.(check int) "other entry zero" 0 (Sim.out_int s "rdata");
  Sim.set_input_int s "clear" 1;
  Sim.step s;
  Sim.set_input_int s "clear" 0;
  Sim.set_input_int s "raddr" 2;
  Alcotest.(check int) "cleared" 0 (Sim.out_int s "rdata")

let test_mem_write_priority () =
  let m = Rtl.Mem.create ~name:"p" ~size:2 ~width:4 () in
  let en = input "en" 1 in
  Rtl.Mem.write m ~enable:en ~addr:(zero 1) ~data:(of_int ~width:4 1);
  Rtl.Mem.write m ~enable:en ~addr:(zero 1) ~data:(of_int ~width:4 2);
  Rtl.Mem.finalize m;
  let c = Circuit.create ~name:"p" ~outputs:[ ("o", Rtl.Mem.reg_at m 0) ] () in
  let s = Sim.create c in
  Sim.set_input_int s "en" 1;
  Sim.step s;
  Alcotest.(check int) "latest write wins" 2 (Sim.out_int s "o")

(* Cloning a circuit must preserve behaviour cycle-for-cycle. *)
let clone_equiv (seed : int) =
  let st = Random.State.make [| seed |] in
  let c = Gen_circuit.random_circuit st ~num_nodes:40 ~num_regs:3 in
  let outputs', _ = Rtl.Transform.clone_outputs c in
  let c' = Circuit.create ~name:"clone" ~outputs:outputs' () in
  let s = Sim.create c and s' = Sim.create c' in
  let cycles = List.init 10 (fun _ -> Gen_circuit.random_inputs st) in
  Gen_circuit.run_outputs s cycles = Gen_circuit.run_outputs s' cycles

let test_clone_with_prefix () =
  let c = counter_circuit () in
  let outputs', mapping =
    Rtl.Transform.clone_outputs c
      ~map_input:(fun ~name ~width -> input ("u_" ^ name) width)
      ~map_reg_name:(fun n -> "u_" ^ n)
  in
  let c' = Circuit.create ~name:"prefixed" ~outputs:outputs' () in
  Alcotest.(check (list string)) "renamed inputs" [ "u_clear"; "u_enable" ]
    (List.sort compare (List.map (fun p -> p.Circuit.port_name) (Circuit.inputs c')));
  let old_reg = Circuit.find_reg c "count" in
  let new_reg = mapping old_reg in
  Alcotest.(check string) "renamed reg" "u_count"
    (Signal.reg_of new_reg).Signal.reg_name

let test_instrument_next () =
  (* Add a flush input that forces the counter back to its init value. *)
  let c = counter_circuit () in
  let flush = input "flush" 1 in
  let outputs', _ =
    Rtl.Transform.clone_outputs c ~instrument_next:(fun ~reg ~next ->
        mux2 flush (Signal.const (Signal.reg_of reg).Signal.init) next)
  in
  let c' = Circuit.create ~name:"flushed" ~outputs:outputs' () in
  let s = Sim.create c' in
  Sim.set_input_int s "enable" 1;
  Sim.step s;
  Sim.step s;
  Alcotest.(check int) "counted" 2 (Sim.out_int s "count");
  Sim.set_input_int s "flush" 1;
  Sim.step s;
  Alcotest.(check int) "flushed to init" 0 (Sim.out_int s "count")

let test_subst_cut () =
  (* Substituting a node with a fresh input models blackboxing. *)
  let a = input "a" 4 in
  let inner = a +: of_int ~width:4 1 in
  let outer = inner *: of_int ~width:4 2 in
  let c = Circuit.create ~name:"c" ~outputs:[ ("o", outer) ] () in
  let hole = input "hole" 4 in
  let outputs', _ =
    Rtl.Transform.clone_outputs c ~subst:(fun s ->
        if Signal.uid s = Signal.uid inner then Some hole else None)
  in
  let c' = Circuit.create ~name:"cut" ~outputs:outputs' () in
  let s = Sim.create c' in
  Sim.set_input_int s "hole" 5;
  Alcotest.(check int) "cut value" 10 (Sim.out_int s "o");
  Alcotest.(check bool) "original input gone" true
    (List.for_all (fun p -> p.Circuit.port_name <> "a") (Circuit.inputs c'))

let test_stats () =
  let c = counter_circuit () in
  Alcotest.(check int) "state bits" 8 (Circuit.state_bits c);
  let str = Format.asprintf "%a" Circuit.pp_stats c in
  Alcotest.(check bool) "stats mentions name" true
    (String.length str > 0 && String.sub str 0 7 = "counter")

let test_waveform () =
  let c = counter_circuit () in
  let s = Sim.create c in
  Sim.watch s [ Circuit.find_output c "count" ];
  Sim.set_input_int s "enable" 1;
  Sim.step s;
  Sim.step s;
  match Sim.waveform s with
  | [ (_, values) ] ->
      Alcotest.(check int) "two samples" 2 (Array.length values);
      Alcotest.check bv "first sample" (Bitvec.zero 8) values.(0);
      Alcotest.check bv "second sample" (Bitvec.one 8) values.(1)
  | _ -> Alcotest.fail "expected one watched signal"

let prop_clone =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:100 ~name:"clone preserves behaviour"
       QCheck.(make Gen.(int_bound 1_000_000))
       clone_equiv)

let () =
  Alcotest.run "rtl"
    [
      ( "circuit",
        [
          Alcotest.test_case "counter" `Quick test_counter;
          Alcotest.test_case "elaboration errors" `Quick test_elaboration_errors;
          Alcotest.test_case "width checks" `Quick test_width_checks;
          Alcotest.test_case "constant folding" `Quick test_constant_folding;
          Alcotest.test_case "mux semantics" `Quick test_mux_semantics;
          Alcotest.test_case "shifts" `Quick test_shifts;
          Alcotest.test_case "stats" `Quick test_stats;
        ] );
      ( "mem",
        [
          Alcotest.test_case "read/write/clear" `Quick test_mem;
          Alcotest.test_case "write priority" `Quick test_mem_write_priority;
        ] );
      ( "transform",
        [
          Alcotest.test_case "clone with prefix" `Quick test_clone_with_prefix;
          Alcotest.test_case "instrument next" `Quick test_instrument_next;
          Alcotest.test_case "subst cut" `Quick test_subst_cut;
          prop_clone;
        ] );
      ("sim", [ Alcotest.test_case "waveform" `Quick test_waveform ]);
    ]

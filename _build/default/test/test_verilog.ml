(* Tests for the SystemVerilog and SVA exporters: structural linting of
   the emitted text (declaration-before-use, balanced module/endmodule,
   port coverage) and content checks against the Listing 1 template. *)

module Signal = Rtl.Signal
module Circuit = Rtl.Circuit

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let count_substring hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i acc =
    if i + nn > nh then acc
    else if String.sub hay i nn = needle then go (i + 1) (acc + 1)
    else go (i + 1) acc
  in
  go 0 0

(* Collect identifiers: crude tokenizer good enough for our emitter's
   output. *)
let identifiers text =
  let toks = ref [] in
  let buf = Buffer.create 16 in
  let flush () =
    if Buffer.length buf > 0 then begin
      toks := Buffer.contents buf :: !toks;
      Buffer.clear buf
    end
  in
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '$' -> Buffer.add_char buf c
      | _ -> flush ())
    text;
  flush ();
  List.rev !toks

(* Declaration-before-use lint: every [w<n>] wire referenced must be
   declared somewhere in the module. *)
let undeclared_wires text =
  let decls = Hashtbl.create 64 in
  String.split_on_char '\n' text
  |> List.iter (fun line ->
         match identifiers line with
         | _ when contains line " wire " || contains line "  reg " -> (
             (* declaration lines look like: wire [w:0] name = ...; *)
             let ids = identifiers line in
             let rec find = function
               | "wire" :: rest | "reg" :: rest -> (
                   match List.filter (fun t -> not (String.length t > 0 && t.[0] >= '0' && t.[0] <= '9')) rest with
                   | name :: _ -> Hashtbl.replace decls name ()
                   | [] -> ())
               | _ :: rest -> find rest
               | [] -> ()
             in
             find ids)
         | _ -> ());
  identifiers text
  |> List.filter (fun t ->
         String.length t > 1 && t.[0] = 'w'
         && (match int_of_string_opt (String.sub t 1 (String.length t - 1)) with
            | Some _ -> not (Hashtbl.mem decls t)
            | None -> false))

let all_duts () =
  [
    ("vscale", Duts.Vscale.create ());
    ("maple", Duts.Maple.create ());
    ("aes", Duts.Aes.create ());
    ("cva6lite", Duts.Cva6lite.create ());
  ]

let test_emit_all_duts () =
  List.iter
    (fun (name, dut) ->
      let text = Rtl.Verilog.to_string dut in
      Alcotest.(check int) (name ^ ": one module") 1 (count_substring text "\nendmodule");
      Alcotest.(check (list string)) (name ^ ": wires declared") [] (undeclared_wires text);
      (* Every port appears in the header. *)
      List.iter
        (fun p ->
          Alcotest.(check bool)
            (Printf.sprintf "%s: port %s present" name p.Circuit.port_name)
            true
            (contains text (Rtl.Verilog.sanitize p.Circuit.port_name)))
        (Circuit.inputs dut @ Circuit.outputs dut);
      (* One register update per register. *)
      Alcotest.(check bool) (name ^ ": has always_ff") true (contains text "always_ff"))
    (all_duts ())

let test_reg_port_collision () =
  (* A register with the same name as an output port must be renamed. *)
  let open Signal in
  let count = reg "count" 4 in
  reg_set_next count (count +: one 4);
  let c = Circuit.create ~name:"clash" ~outputs:[ ("count", count) ] () in
  let text = Rtl.Verilog.to_string c in
  Alcotest.(check bool) "renamed reg declared" true (contains text "reg [3:0] count_q;");
  Alcotest.(check bool) "output assigned from reg" true
    (contains text "assign count = count_q;")

let test_constants_and_ops () =
  let open Signal in
  let a = input "a" 8 and b = input "b" 8 in
  let c =
    Circuit.create ~name:"ops"
      ~outputs:
        [
          ("sum", a +: b);
          ("prod", a *: b);
          ("lt", a <: b);
          ("slt", slt a b);
          ("slice", select a 6 2);
          ("cat", concat [ a; b ]);
          ("k", of_int ~width:8 0xA5);
        ]
      ()
  in
  let text = Rtl.Verilog.to_string c in
  List.iter
    (fun frag -> Alcotest.(check bool) frag true (contains text frag))
    [ "a + b"; "a * b"; "a < b"; "$signed(a) < $signed(b)"; "a[6:2]"; "{a, b}"; "8'ha5" ]

let test_sva_wrapper_structure () =
  let dut = Duts.Maple.create () in
  let text = Autocc.Sva.wrapper ~threshold:4 ~arch_regs:[ "base"; "tlb_en" ] dut in
  List.iter
    (fun frag -> Alcotest.(check bool) frag true (contains text frag))
    [
      "module ft_maple";
      "localparam THRESHOLD = 4;";
      "maple ua (";
      "maple ub (";
      (* Transaction gating from the circuit's annotations. *)
      "wire noc_req_addr_eq = !a_noc_req_valid || a_noc_req_addr == b_noc_req_addr;";
      "ua.base == ub.base";
      "ua.tlb_en == ub.tlb_en";
      "wire spy_starts = transfer_cond && eq_cnt >= THRESHOLD;";
      "assume property (@(posedge clk) spy_mode |-> cfg_wen_eq);";
      "assert property (@(posedge clk) spy_mode |-> resp_valid_eq);";
    ];
  (* One assumption per duplicated input, one assertion per output. *)
  Alcotest.(check int) "assumption count" (List.length (Circuit.inputs dut))
    (count_substring text "assume property");
  Alcotest.(check int) "assertion count" (List.length (Circuit.outputs dut))
    (count_substring text "assert property")

let test_sva_common_inputs () =
  let open Signal in
  let dbg = input "debug" 4 in
  let d = input "din" 4 in
  let q = reg "q" 4 in
  reg_set_next q d;
  let c =
    Circuit.create ~name:"cm" ~common:[ "debug" ] ~outputs:[ ("o", q +: dbg) ] ()
  in
  let text = Autocc.Sva.wrapper c in
  Alcotest.(check bool) "single common port" true (contains text "input wire [3:0] debug,");
  Alcotest.(check bool) "no duplicated common" false (contains text "a_debug");
  Alcotest.(check bool) "no assume on common" false (contains text "debug_eq")

let test_sby_and_flow () =
  let dut = Duts.Aes.create () in
  let cfg = Autocc.Sva.sby_config ~depth:30 dut in
  List.iter
    (fun frag -> Alcotest.(check bool) frag true (contains cfg frag))
    [ "mode bmc"; "depth 30"; "read -formal aes.sv"; "prep -top ft_aes" ];
  let tcl = Autocc.Sva.jg_tcl dut in
  List.iter
    (fun frag -> Alcotest.(check bool) frag true (contains tcl frag))
    [ "analyze -sv12 ft_aes.sv"; "elaborate -top ft_aes"; "prove -all" ];
  let dir = Filename.temp_file "autocc" "" in
  Sys.remove dir;
  Autocc.Sva.write_flow ~dir dut;
  List.iter
    (fun f ->
      Alcotest.(check bool) (f ^ " exists") true (Sys.file_exists (Filename.concat dir f)))
    [ "aes.sv"; "ft_aes.sv"; "aes.sby"; "FPV.tcl" ];
  Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  Sys.rmdir dir

let () =
  Alcotest.run "verilog"
    [
      ( "verilog",
        [
          Alcotest.test_case "emit all DUTs" `Quick test_emit_all_duts;
          Alcotest.test_case "reg/port collision" `Quick test_reg_port_collision;
          Alcotest.test_case "operators" `Quick test_constants_and_ops;
        ] );
      ( "sva",
        [
          Alcotest.test_case "wrapper structure" `Quick test_sva_wrapper_structure;
          Alcotest.test_case "common inputs" `Quick test_sva_common_inputs;
          Alcotest.test_case "sby config and flow" `Quick test_sby_and_flow;
        ] );
    ]

test/test_autocc.ml: Alcotest Autocc Bmc Filename Format List Option Printf Rtl Sim String Sys

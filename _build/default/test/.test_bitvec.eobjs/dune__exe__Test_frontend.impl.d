test/test_frontend.ml: Alcotest Autocc Bitvec Bmc Duts Frontend Gen Gen_circuit Lexer_tokens List QCheck QCheck_alcotest Random Rtl Sim

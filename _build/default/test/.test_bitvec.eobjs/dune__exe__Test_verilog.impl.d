test/test_verilog.ml: Alcotest Array Autocc Buffer Duts Filename Hashtbl List Printf Rtl String Sys

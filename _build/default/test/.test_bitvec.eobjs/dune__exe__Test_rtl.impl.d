test/test_rtl.ml: Alcotest Array Bitvec Format Gen Gen_circuit List Printf QCheck QCheck_alcotest Random Rtl Sim String

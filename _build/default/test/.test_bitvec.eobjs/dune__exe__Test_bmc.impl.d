test/test_bmc.ml: Alcotest Array Bitvec Bmc List Printf Rtl

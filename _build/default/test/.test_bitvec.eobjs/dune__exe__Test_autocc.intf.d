test/test_autocc.mli:

test/gen_circuit.ml: Bitvec List Printf Random Rtl Sim

test/test_cnf.ml: Alcotest Array Bitvec Cnf Fun Gen Gen_circuit List QCheck QCheck_alcotest Random Rtl Sat Sim

test/test_duts.mli:

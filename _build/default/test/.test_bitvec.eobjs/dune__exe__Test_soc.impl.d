test/test_soc.ml: Alcotest Autocc Baseline Bmc Duts List Printf Rtl Soc

test/test_duts.ml: Alcotest Autocc Bitvec Bmc Duts List Printf Rtl Sim String

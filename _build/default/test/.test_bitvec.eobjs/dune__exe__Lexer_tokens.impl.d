test/lexer_tokens.ml: Frontend List

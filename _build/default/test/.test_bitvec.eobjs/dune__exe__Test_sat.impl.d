test/test_sat.ml: Alcotest Array Gen List QCheck QCheck_alcotest Random Sat

test/test_integration.ml: Alcotest Array Autocc Bitvec Bmc Cnf Duts Filename Fun Gen Hashtbl List Printf QCheck QCheck_alcotest Random Rtl Sat Sim String Sys

(* Differential testing of the bit-blaster: for random circuits and random
   input traces, the SAT model obtained by pinning the inputs must agree
   with the interpreter on every output at every cycle. This exercises
   every operator encoding through multiple unrolled cycles (register
   chaining included). *)

module S = Sat.Solver

let pin_inputs blaster cycle assignments =
  let circuit = Cnf.Blast.circuit blaster in
  List.iter
    (fun (name, v) ->
      match
        List.find_opt (fun p -> p.Rtl.Circuit.port_name = name) (Rtl.Circuit.inputs circuit)
      with
      | None -> ()
      | Some p ->
          let ls = Cnf.Blast.lits blaster ~cycle p.Rtl.Circuit.signal in
          Array.iteri
            (fun i l ->
              let want = Bitvec.bit v i in
              S.add_clause (Cnf.Blast.solver blaster) [ (if want then l else S.neg l) ])
            ls)
    assignments

let prop_blast_matches_sim seed =
  let st = Random.State.make [| seed |] in
  let circuit = Gen_circuit.random_circuit st ~num_nodes:30 ~num_regs:3 in
  let cycles = 1 + Random.State.int st 6 in
  let trace = List.init cycles (fun _ -> Gen_circuit.random_inputs st) in
  (* Simulator reference. *)
  let sim = Sim.create circuit in
  let expected = Gen_circuit.run_outputs sim trace in
  (* SAT model. *)
  let solver = S.create () in
  let blaster = Cnf.Blast.create solver circuit in
  List.iteri
    (fun cycle assignments ->
      Cnf.Blast.unroll_cycle blaster;
      pin_inputs blaster cycle assignments)
    trace;
  match S.solve solver with
  | S.Unsat -> false
  | S.Sat ->
      List.for_all2
        (fun cycle outs ->
          List.for_all
            (fun (name, v) ->
              let got =
                Cnf.Blast.node_value blaster ~cycle
                  (Rtl.Circuit.find_output circuit name)
              in
              Bitvec.equal got v)
            outs)
        (List.init cycles Fun.id)
        expected

let test_constant_bits () =
  (* Constants must not allocate solver variables beyond the reserved
     true literal. *)
  let open Rtl.Signal in
  let c =
    Rtl.Circuit.create ~name:"konst"
      ~outputs:[ ("o", of_int ~width:8 0xA5 +: of_int ~width:8 0x01) ]
      ()
  in
  let solver = S.create () in
  let blaster = Cnf.Blast.create solver c in
  Cnf.Blast.unroll_cycle blaster;
  (match S.solve solver with
  | S.Sat ->
      Alcotest.(check int) "constant value" 0xA6
        (Bitvec.to_int (Cnf.Blast.node_value blaster ~cycle:0 (Rtl.Circuit.find_output c "o")))
  | S.Unsat -> Alcotest.fail "unsat on constant circuit");
  Alcotest.(check int) "only the reserved var" 1 (S.num_vars solver)

let test_register_chain () =
  (* A register pipeline delays its input by its length. *)
  let open Rtl.Signal in
  let d = input "d" 4 in
  let r1 = reg "r1" 4 and r2 = reg "r2" 4 in
  reg_set_next r1 d;
  reg_set_next r2 r1;
  let c = Rtl.Circuit.create ~name:"pipe" ~outputs:[ ("q", r2) ] () in
  let solver = S.create () in
  let blaster = Cnf.Blast.create solver c in
  for _ = 0 to 3 do
    Cnf.Blast.unroll_cycle blaster
  done;
  (* Pin d at each cycle to the cycle number + 3. *)
  for cyc = 0 to 3 do
    pin_inputs blaster cyc [ ("d", Bitvec.of_int ~width:4 (cyc + 3)) ]
  done;
  (match S.solve solver with
  | S.Sat ->
      let q cyc =
        Bitvec.to_int (Cnf.Blast.node_value blaster ~cycle:cyc (Rtl.Circuit.find_output c "q"))
      in
      Alcotest.(check int) "cycle 0" 0 (q 0);
      Alcotest.(check int) "cycle 1" 0 (q 1);
      Alcotest.(check int) "cycle 2" 3 (q 2);
      Alcotest.(check int) "cycle 3" 4 (q 3)
  | S.Unsat -> Alcotest.fail "unsat on pipeline")

let test_sat_can_choose_inputs () =
  (* Leave inputs free and ask the solver to make the output equal 7. *)
  let open Rtl.Signal in
  let a = input "a" 4 and b = input "b" 4 in
  let c = Rtl.Circuit.create ~name:"addmul" ~outputs:[ ("o", (a +: b) *: of_int ~width:4 3) ] () in
  let solver = S.create () in
  let blaster = Cnf.Blast.create solver c in
  Cnf.Blast.unroll_cycle blaster;
  let out = Cnf.Blast.lits blaster ~cycle:0 (Rtl.Circuit.find_output c "o") in
  let want = Bitvec.of_int ~width:4 9 in
  Array.iteri
    (fun i l -> S.add_clause solver [ (if Bitvec.bit want i then l else S.neg l) ])
    out;
  match S.solve solver with
  | S.Sat ->
      let va = Cnf.Blast.input_value blaster ~cycle:0 "a" in
      let vb = Cnf.Blast.input_value blaster ~cycle:0 "b" in
      let sum = Bitvec.add va vb in
      Alcotest.(check int) "(a+b)*3 = 9"
        9
        (Bitvec.to_int (Bitvec.mul sum (Bitvec.of_int ~width:4 3)))
  | S.Unsat -> Alcotest.fail "expected a solution"

let qprop name f =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:200 ~name QCheck.(make Gen.(int_bound 1_000_000)) f)

let () =
  Alcotest.run "cnf"
    [
      ( "directed",
        [
          Alcotest.test_case "constant bits" `Quick test_constant_bits;
          Alcotest.test_case "register chain" `Quick test_register_chain;
          Alcotest.test_case "solver chooses inputs" `Quick test_sat_can_choose_inputs;
        ] );
      ("properties", [ qprop "blast matches sim" prop_blast_matches_sim ]);
    ]

examples/vscale_walkthrough.mli:

examples/sby_export.mli:

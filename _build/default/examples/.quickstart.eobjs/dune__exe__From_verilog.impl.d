examples/from_verilog.ml: Autocc Bmc Format Frontend List Rtl String Sys

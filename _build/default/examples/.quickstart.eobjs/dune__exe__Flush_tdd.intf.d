examples/flush_tdd.mli:

examples/vscale_walkthrough.ml: Autocc Bmc Duts Format List Rtl Unix

examples/quickstart.mli:

examples/sby_export.ml: Array Autocc Bmc Duts Format String Sys

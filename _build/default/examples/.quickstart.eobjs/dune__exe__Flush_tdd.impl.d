examples/flush_tdd.ml: Autocc Format List Rtl String

examples/quickstart.ml: Autocc Bmc Format Rtl

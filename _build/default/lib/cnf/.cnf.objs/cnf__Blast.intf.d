lib/cnf/blast.mli: Bitvec Rtl Sat

lib/cnf/blast.ml: Array Bitvec List Option Printf Rtl Sat

module Circuit = Rtl.Circuit

type result = {
  found : bool;
  trials : int;
  sim_cycles : int;
  seconds : float;
  diverged_output : string option;
}

let search ?(seed = 1) ?(max_trials = 10_000) ?(victim_cycles = 20)
    ?(spy_cycles = 20) ?(flush_script = []) ?(input_profile = fun _ _ -> None)
    circuit =
  let st = Random.State.make [| seed |] in
  let t0 = Unix.gettimeofday () in
  let inputs = Circuit.inputs circuit in
  let outputs = Circuit.outputs circuit in
  let sim_a = Sim.create circuit in
  let sim_b = Sim.create circuit in
  let total_cycles = ref 0 in
  let random_value name width =
    match input_profile name st with
    | Some v -> Bitvec.of_int ~width v
    | None -> Bitvec.random st width
  in
  let drive sim values =
    List.iter (fun (name, v) -> Sim.set_input sim name v) values
  in
  let random_stimulus () =
    List.map
      (fun p ->
        (p.Circuit.port_name, random_value p.Circuit.port_name (Rtl.Signal.width p.Circuit.signal)))
      inputs
  in
  let diverged () =
    List.find_opt
      (fun p ->
        not
          (Bitvec.equal
             (Sim.out sim_a p.Circuit.port_name)
             (Sim.out sim_b p.Circuit.port_name)))
      outputs
  in
  let run_trial () =
    Sim.reset sim_a;
    Sim.reset sim_b;
    (* Victim phase: independent random executions. *)
    for _ = 1 to victim_cycles do
      drive sim_a (random_stimulus ());
      drive sim_b (random_stimulus ());
      Sim.step sim_a;
      Sim.step sim_b;
      total_cycles := !total_cycles + 2
    done;
    (* Context switch: the same scripted flush for both universes. *)
    List.iter
      (fun assignments ->
        let values =
          List.map
            (fun p ->
              let name = p.Circuit.port_name in
              match List.assoc_opt name assignments with
              | Some v -> (name, Bitvec.of_int ~width:(Rtl.Signal.width p.Circuit.signal) v)
              | None -> (name, Bitvec.zero (Rtl.Signal.width p.Circuit.signal)))
            inputs
        in
        drive sim_a values;
        drive sim_b values;
        Sim.step sim_a;
        Sim.step sim_b;
        total_cycles := !total_cycles + 2)
      flush_script;
    (* Spy phase: identical random stimulus, outputs compared. *)
    let rec spy n =
      if n = 0 then None
      else begin
        let stimulus = random_stimulus () in
        drive sim_a stimulus;
        drive sim_b stimulus;
        match diverged () with
        | Some p -> Some p.Circuit.port_name
        | None ->
            Sim.step sim_a;
            Sim.step sim_b;
            total_cycles := !total_cycles + 2;
            spy (n - 1)
      end
    in
    spy spy_cycles
  in
  let rec go trial =
    if trial >= max_trials then
      {
        found = false;
        trials = max_trials;
        sim_cycles = !total_cycles;
        seconds = Unix.gettimeofday () -. t0;
        diverged_output = None;
      }
    else
      match run_trial () with
      | Some name ->
          {
            found = true;
            trials = trial + 1;
            sim_cycles = !total_cycles;
            seconds = Unix.gettimeofday () -. t0;
            diverged_output = Some name;
          }
      | None -> go (trial + 1)
  in
  go 0

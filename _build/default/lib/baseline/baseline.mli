(** Constrained-random differential testing — the baseline AutoCC is
    measured against.

    Each trial emulates the paper's stress-test setup: two instances of
    the DUT run independent random victim executions, a scripted context
    switch (the flush script) is applied to both, and then both execute
    the same random spy stimulus while their outputs are compared each
    cycle. A divergence is a witnessed covert channel.

    Random testing finds wide channels quickly but needs on the order of
    [2^w] probes to hit a [w]-bit hidden-state channel, whereas BMC finds
    it at its exact depth — this is the "minutes instead of many hours"
    comparison of the paper's introduction, reproduced by
    [bench/main.exe baseline]. *)

type result = {
  found : bool;
  trials : int;  (** trials executed (= [max_trials] when not found) *)
  sim_cycles : int;  (** total simulated cycles over all trials *)
  seconds : float;
  diverged_output : string option;
}

val search :
  ?seed:int ->
  ?max_trials:int ->
  ?victim_cycles:int ->
  ?spy_cycles:int ->
  ?flush_script:(string * int) list list ->
  ?input_profile:(string -> Random.State.t -> int option) ->
  Rtl.Circuit.t ->
  result
(** [search dut] runs up to [max_trials] (default 10_000) trials of
    [victim_cycles] (default 20) random victim cycles, the flush script
    (a per-cycle list of input assignments applied to both universes,
    default none), and [spy_cycles] (default 20) shared random spy
    cycles.

    [input_profile name st] can bias or pin the stimulus for one input;
    returning [None] falls back to uniform random. *)

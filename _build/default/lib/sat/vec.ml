(* Growable arrays, used for watcher lists and the trail. *)

type 'a t = { mutable data : 'a array; mutable size : int; dummy : 'a }

let create dummy = { data = Array.make 8 dummy; size = 0; dummy }
let size v = v.size
let get v i = v.data.(i)
let set v i x = v.data.(i) <- x

let push v x =
  if v.size = Array.length v.data then begin
    let data = Array.make (2 * Array.length v.data) v.dummy in
    Array.blit v.data 0 data 0 v.size;
    v.data <- data
  end;
  v.data.(v.size) <- x;
  v.size <- v.size + 1

let pop v =
  v.size <- v.size - 1;
  let x = v.data.(v.size) in
  v.data.(v.size) <- v.dummy;
  x

let last v = v.data.(v.size - 1)

let shrink v n =
  for i = n to v.size - 1 do
    v.data.(i) <- v.dummy
  done;
  v.size <- n

let clear v = shrink v 0

let iter f v =
  for i = 0 to v.size - 1 do
    f v.data.(i)
  done

let to_list v =
  let rec go i acc = if i < 0 then acc else go (i - 1) (v.data.(i) :: acc) in
  go (v.size - 1) []

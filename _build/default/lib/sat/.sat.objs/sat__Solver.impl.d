lib/sat/solver.ml: Array Float Format List Option Vec

(** A CDCL SAT solver.

    Conflict-driven clause learning in the MiniSat lineage: two-watched-
    literal propagation, first-UIP conflict analysis, VSIDS variable
    activities with phase saving, Luby restarts, and activity-based
    deletion of learned clauses.

    The solver is incremental: clauses and variables may be added between
    {!solve} calls, and each call may carry a list of assumption literals
    that hold only for that call — the mechanism {!Bmc} uses to activate
    per-depth constraints. *)

type t

type lit = private int
(** A literal; obtain with {!lit} or {!neg}. *)

type result = Sat | Unsat

val create : unit -> t

val new_var : t -> int
(** Allocate a fresh variable; returns its id (>= 0). *)

val num_vars : t -> int

val lit : int -> bool -> lit
(** [lit v sign] is [v] when [sign], [¬v] otherwise. *)

val neg : lit -> lit
val var_of_lit : lit -> int
val lit_sign : lit -> bool

val add_clause : t -> lit list -> unit
(** Add a clause. Adding the empty clause (or a clause that simplifies to
    it) makes the instance permanently unsatisfiable. All variables must
    have been allocated. *)

val solve : ?assumptions:lit list -> t -> result
(** Solve under the given assumptions. After [Sat], {!value} reads the
    model. After [Unsat] under assumptions, the solver remains usable. *)

val value : t -> int -> bool
(** Model value of a variable after a [Sat] answer. Unconstrained
    variables read [false]. Raises [Failure] if the last call was not
    satisfiable. *)

val num_clauses : t -> int
val num_learnts : t -> int
val num_conflicts : t -> int
val num_decisions : t -> int
val num_propagations : t -> int

val pp_stats : Format.formatter -> t -> unit

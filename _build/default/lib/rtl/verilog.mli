(** SystemVerilog emission.

    Renders an elaborated circuit as a synthesizable SystemVerilog
    module with a [clk]/[rst] pair: every combinational node becomes an
    [assign], every register an [always_ff] with synchronous reset to its
    initial value. The output is the form consumed by the open-source
    SBY flow the paper targets, so designs modeled in this library can be
    re-verified with an external FPV engine. *)

val emit : Format.formatter -> Circuit.t -> unit
(** Write the module. Port names are used verbatim; internal nodes get
    generated [w<n>] wire names; register names are sanitized
    ([.] becomes [_]). *)

val to_string : Circuit.t -> string

val sanitize : string -> string
(** The identifier sanitization applied to register and port names. *)

type write_port = { enable : Signal.t; addr : Signal.t; data : Signal.t }

type t = {
  name : string;
  width : int;
  cells : Signal.t array;
  inits : Bitvec.t array;
  mutable writes : write_port list; (* reverse order of [write] calls *)
  mutable finalized : bool;
  addr_bits : int;
}

let is_power_of_two n = n > 0 && n land (n - 1) = 0

let create ~name ~size ~width ?(init = fun _ -> Bitvec.zero width) () =
  if not (is_power_of_two size) then invalid_arg "Mem.create: size must be a power of two";
  let inits = Array.init size init in
  let cells =
    Array.init size (fun i ->
        Signal.reg ~init:inits.(i) (Printf.sprintf "%s_%d" name i) width)
  in
  let addr_bits = max 1 (int_of_float (Float.round (Float.log2 (float_of_int size)))) in
  { name; width; cells; inits; writes = []; finalized = false; addr_bits }

let size t = Array.length t.cells
let width t = t.width
let reg_at t i = t.cells.(i)
let regs t = Array.to_list t.cells

let narrow_addr t addr =
  if Signal.width addr < t.addr_bits then
    invalid_arg (Printf.sprintf "Mem(%s): address too narrow" t.name)
  else Signal.select addr (t.addr_bits - 1) 0

let read t addr =
  if size t = 1 then t.cells.(0)
  else Signal.mux (narrow_addr t addr) (Array.to_list t.cells)

let write t ~enable ~addr ~data =
  if Signal.width enable <> 1 then invalid_arg "Mem.write: enable must be 1 bit";
  if Signal.width data <> t.width then invalid_arg "Mem.write: data width mismatch";
  let addr = if size t = 1 then addr else narrow_addr t addr in
  t.writes <- { enable; addr; data } :: t.writes

let finalize ?clear t =
  if t.finalized then invalid_arg (Printf.sprintf "Mem(%s): finalize called twice" t.name);
  t.finalized <- true;
  Array.iteri
    (fun i cell ->
      let idx = Signal.of_int ~width:t.addr_bits i in
      let next =
        (* Writes were accumulated latest-first; fold in call order so the
           latest [write] call wraps outermost and therefore wins. *)
        List.fold_left
          (fun acc w ->
            let hit =
              if size t = 1 then w.enable
              else Signal.( &: ) w.enable (Signal.( ==: ) w.addr idx)
            in
            Signal.mux2 hit w.data acc)
          cell (List.rev t.writes)
      in
      let next =
        match clear with
        | Some c -> Signal.mux2 c (Signal.const t.inits.(i)) next
        | None -> next
      in
      Signal.reg_set_next cell next)
    t.cells

lib/rtl/transform.ml: Array Circuit Hashtbl List Signal

lib/rtl/signal.mli: Bitvec Format

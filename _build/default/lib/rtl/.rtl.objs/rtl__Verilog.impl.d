lib/rtl/verilog.ml: Array Bitvec Circuit Format Hashtbl List Option Printf Signal String

lib/rtl/vcd.ml: Array Bitvec Char Fun List Printf Signal String

lib/rtl/circuit.mli: Format Signal

lib/rtl/mem.ml: Array Bitvec Float List Printf Signal

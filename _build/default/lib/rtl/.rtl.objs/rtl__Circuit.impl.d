lib/rtl/circuit.ml: Array Format Hashtbl List Printf Queue Signal String

lib/rtl/signal.ml: Array Bitvec Format List Option Printf

lib/rtl/mem.mli: Bitvec Signal

lib/rtl/vcd.mli: Bitvec Signal

lib/rtl/verilog.mli: Circuit Format

lib/rtl/transform.mli: Circuit Signal

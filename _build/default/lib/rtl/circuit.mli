(** Elaborated circuits.

    A circuit packages a named set of output signals together with the
    derived netlist: all reachable nodes in a checked topological order,
    the primary inputs, and the registers. Elaboration fails on registers
    without a next-state function, on combinational loops, and on duplicate
    port names.

    Circuits also carry the interface metadata AutoCC consumes:
    transactions (a 1-bit valid port governing payload ports), [common]
    inputs (the paper's [//AutoCC Common] annotation), and named submodule
    boundaries used for blackboxing. *)

type port = { port_name : string; signal : Signal.t }

type transaction = {
  tx_name : string;
  valid : string;  (** port name of the 1-bit valid *)
  payloads : string list;  (** port names governed by [valid] *)
}

type boundary = {
  bnd_name : string;
  bnd_outputs : (string * Signal.t) list;
      (** signals the submodule drives into the rest of the circuit *)
  bnd_inputs : (string * Signal.t) list;
      (** signals of the circuit that feed the submodule *)
}

type t

val create :
  name:string ->
  ?in_tx:transaction list ->
  ?out_tx:transaction list ->
  ?common:string list ->
  ?boundaries:boundary list ->
  outputs:(string * Signal.t) list ->
  unit ->
  t
(** Elaborates the graph reachable from [outputs] (and transitively from
    register next-state functions). Raises [Failure] with a diagnostic on
    elaboration errors. *)

val name : t -> string

val inputs : t -> port list
(** Primary inputs, ordered by creation. *)

val outputs : t -> port list
val regs : t -> Signal.t list

val topo : t -> Signal.t array
(** All reachable nodes in evaluation order: sources (constants, inputs,
    registers) first, then each combinational node after its arguments. *)

val num_nodes : t -> int

val node_index : t -> Signal.t -> int
(** Dense index of a node into [topo]-indexed arrays. Raises [Not_found]
    if the node is not part of the circuit. *)

val mem_node : t -> Signal.t -> bool
val in_tx : t -> transaction list
val out_tx : t -> transaction list
val common : t -> string list
val boundaries : t -> boundary list
val find_input : t -> string -> Signal.t
val find_output : t -> string -> Signal.t

val find_reg : t -> string -> Signal.t
(** Look up a register by its [reg_name]. Raises [Not_found]. *)

val state_bits : t -> int
(** Total number of register bits — the size of the DUT state in the sense
    of the paper's Definition 1. *)

val pp_stats : Format.formatter -> t -> unit

(** Register-file style memories.

    Small memories are modeled as arrays of registers with mux-tree read
    ports — the standard FPV downsizing technique the paper applies to
    caches and TLBs. Writes accumulate until {!finalize} closes every
    register's next-state function; later writes take priority over
    earlier ones on the same cycle. *)

type t

val create : name:string -> size:int -> width:int -> ?init:(int -> Bitvec.t) -> unit -> t
(** [size] must be a power of two so that address decoding is total. *)

val size : t -> int
val width : t -> int

val read : t -> Signal.t -> Signal.t
(** [read t addr] asynchronous read port; [addr] must be wide enough to
    index the whole memory (extra high bits are ignored by clamping). *)

val reg_at : t -> int -> Signal.t
(** Direct access to the backing register of one entry. *)

val regs : t -> Signal.t list

val write : t -> enable:Signal.t -> addr:Signal.t -> data:Signal.t -> unit
(** Queue a write port. [enable] is 1 bit wide. *)

val finalize : ?clear:Signal.t -> t -> unit
(** Close all next-state functions. When [clear] (1 bit) is high the whole
    memory resets to its initial contents, overriding any write — this is
    the flush path. Must be called exactly once. *)

(** Graph rewriting.

    [rebuild] deep-copies the signal graph reachable from a list of roots,
    producing fresh nodes. Hooks allow the copy to diverge from the
    original; they are the basis of module instantiation (cloning a DUT
    twice into the AutoCC wrapper), blackboxing (cutting a submodule
    boundary) and flush instrumentation (muxing a reset value into
    register next-state functions). *)

type mapping = Signal.t -> Signal.t
(** Maps an original node to its copy. Raises [Not_found] for nodes that
    were not reachable from the rebuilt roots. *)

val rebuild :
  ?subst:(Signal.t -> Signal.t option) ->
  ?map_input:(name:string -> width:int -> Signal.t) ->
  ?map_reg_name:(string -> string) ->
  ?instrument_next:(reg:Signal.t -> next:Signal.t -> Signal.t) ->
  Signal.t list ->
  Signal.t list * mapping
(** [rebuild roots] returns the copies of [roots] and the old-to-new
    mapping.

    - [subst old] is consulted first for every node; returning [Some n]
      grafts [n] (a node of the {e new} graph) in place of the copy of
      [old] without recursing into [old]'s arguments.
    - [map_input ~name ~width] produces the copy of each primary input
      (default: a fresh input with the same name). Called once per input
      node.
    - [map_reg_name] renames registers (default: identity).
    - [instrument_next ~reg ~next] post-processes each register's copied
      next-state function; [reg] is the {e new} register node. Default:
      [next] unchanged. *)

val clone_outputs :
  ?subst:(Signal.t -> Signal.t option) ->
  ?map_input:(name:string -> width:int -> Signal.t) ->
  ?map_reg_name:(string -> string) ->
  ?instrument_next:(reg:Signal.t -> next:Signal.t -> Signal.t) ->
  Circuit.t ->
  (string * Signal.t) list * mapping
(** Clone a whole circuit through its output ports; returns the copied
    outputs labelled with their original port names. *)

let sanitize name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c
      | _ -> '_')
    name

let width_decl w = if w = 1 then "" else Printf.sprintf "[%d:0] " (w - 1)

let const_literal v =
  Printf.sprintf "%d'h%s" (Bitvec.width v) (Bitvec.to_hex_string v)

(* Build the naming table: inputs keep their port names; registers keep
   their (sanitized) names unless that would collide with a port, in
   which case they get a [_q] suffix; everything else is [w<uid>]. *)
let naming circuit =
  let port_names =
    List.map (fun p -> sanitize p.Circuit.port_name) (Circuit.inputs circuit)
    @ List.map (fun p -> sanitize p.Circuit.port_name) (Circuit.outputs circuit)
  in
  let table = Hashtbl.create 64 in
  Array.iter
    (fun s ->
      let name =
        match Signal.op s with
        | Signal.Input n -> sanitize n
        | Signal.Reg r ->
            let n = sanitize r.Signal.reg_name in
            if List.mem n port_names then n ^ "_q" else n
        | _ -> Printf.sprintf "w%d" (Signal.uid s)
      in
      Hashtbl.replace table (Signal.uid s) name)
    (Circuit.topo circuit);
  table

let emit fmt circuit =
  let names = naming circuit in
  let ref_name s = Hashtbl.find names (Signal.uid s) in
  let rhs s =
    let a i = ref_name (Signal.args s).(i) in
    match Signal.op s with
    | Signal.Const v -> const_literal v
    | Signal.Input _ | Signal.Reg _ -> assert false (* not assigned *)
    | Signal.Not -> Printf.sprintf "~%s" (a 0)
    | Signal.And -> Printf.sprintf "%s & %s" (a 0) (a 1)
    | Signal.Or -> Printf.sprintf "%s | %s" (a 0) (a 1)
    | Signal.Xor -> Printf.sprintf "%s ^ %s" (a 0) (a 1)
    | Signal.Add -> Printf.sprintf "%s + %s" (a 0) (a 1)
    | Signal.Sub -> Printf.sprintf "%s - %s" (a 0) (a 1)
    | Signal.Mul -> Printf.sprintf "%s * %s" (a 0) (a 1)
    | Signal.Eq -> Printf.sprintf "%s == %s" (a 0) (a 1)
    | Signal.Ult -> Printf.sprintf "%s < %s" (a 0) (a 1)
    | Signal.Slt -> Printf.sprintf "$signed(%s) < $signed(%s)" (a 0) (a 1)
    | Signal.Mux -> Printf.sprintf "%s ? %s : %s" (a 0) (a 1) (a 2)
    | Signal.Concat ->
        let parts = Array.to_list (Array.map ref_name (Signal.args s)) in
        Printf.sprintf "{%s}" (String.concat ", " parts)
    | Signal.Slice (hi, lo) ->
        if hi = lo then Printf.sprintf "%s[%d]" (a 0) hi
        else Printf.sprintf "%s[%d:%d]" (a 0) hi lo
  in
  let ports =
    [ "input wire clk"; "input wire rst" ]
    @ List.map
        (fun p ->
          Printf.sprintf "input wire %s%s"
            (width_decl (Signal.width p.Circuit.signal))
            (sanitize p.Circuit.port_name))
        (Circuit.inputs circuit)
    @ List.map
        (fun p ->
          Printf.sprintf "output wire %s%s"
            (width_decl (Signal.width p.Circuit.signal))
            (sanitize p.Circuit.port_name))
        (Circuit.outputs circuit)
  in
  Format.fprintf fmt "module %s (@." (sanitize (Circuit.name circuit));
  let nports = List.length ports in
  List.iteri
    (fun i p -> Format.fprintf fmt "  %s%s@." p (if i = nports - 1 then "" else ","))
    ports;
  Format.fprintf fmt ");@.@.";
  (* Declarations and combinational assignments in topological order. *)
  Array.iter
    (fun s ->
      match Signal.op s with
      | Signal.Input _ -> ()
      | Signal.Reg _ ->
          Format.fprintf fmt "  reg %s%s;@." (width_decl (Signal.width s)) (ref_name s)
      | Signal.Const _ | Signal.Not | Signal.And | Signal.Or | Signal.Xor
      | Signal.Add | Signal.Sub | Signal.Mul | Signal.Eq | Signal.Ult
      | Signal.Slt | Signal.Mux | Signal.Concat | Signal.Slice _ ->
          Format.fprintf fmt "  wire %s%s = %s;@."
            (width_decl (Signal.width s))
            (ref_name s) (rhs s))
    (Circuit.topo circuit);
  (* Register updates. *)
  if Circuit.regs circuit <> [] then begin
    Format.fprintf fmt "@.  always_ff @@(posedge clk) begin@.";
    Format.fprintf fmt "    if (rst) begin@.";
    List.iter
      (fun r ->
        Format.fprintf fmt "      %s <= %s;@." (ref_name r)
          (const_literal (Signal.reg_of r).Signal.init))
      (Circuit.regs circuit);
    Format.fprintf fmt "    end else begin@.";
    List.iter
      (fun r ->
        Format.fprintf fmt "      %s <= %s;@." (ref_name r)
          (ref_name (Option.get (Signal.reg_of r).Signal.next)))
      (Circuit.regs circuit);
    Format.fprintf fmt "    end@.  end@."
  end;
  (* Output bindings. *)
  Format.fprintf fmt "@.";
  List.iter
    (fun p ->
      Format.fprintf fmt "  assign %s = %s;@."
        (sanitize p.Circuit.port_name)
        (ref_name p.Circuit.signal))
    (Circuit.outputs circuit);
  Format.fprintf fmt "@.endmodule@."

let to_string circuit = Format.asprintf "%a" emit circuit

type port = { port_name : string; signal : Signal.t }

type transaction = { tx_name : string; valid : string; payloads : string list }

type boundary = {
  bnd_name : string;
  bnd_outputs : (string * Signal.t) list;
  bnd_inputs : (string * Signal.t) list;
}

type t = {
  name : string;
  inputs : port list;
  outputs : port list;
  regs : Signal.t list;
  topo : Signal.t array;
  index : (int, int) Hashtbl.t; (* signal uid -> position in topo *)
  in_tx : transaction list;
  out_tx : transaction list;
  common : string list;
  boundaries : boundary list;
}

let fail fmt = Printf.ksprintf failwith fmt

(* Depth-first post-order over combinational edges. Registers, inputs and
   constants are sources: we do not traverse into a register's [next] here
   (that happens via the worklist in [collect]), so any cycle found is a
   true combinational loop. *)
let topo_sort roots =
  let order = ref [] in
  let state = Hashtbl.create 1024 in
  (* 0 = visiting, 1 = done *)
  let rec visit path s =
    match Hashtbl.find_opt state (Signal.uid s) with
    | Some 1 -> ()
    | Some _ ->
        let cycle =
          List.map (Format.asprintf "%a" Signal.pp) (s :: path) |> String.concat " <- "
        in
        fail "combinational loop: %s" cycle
    | None ->
        Hashtbl.replace state (Signal.uid s) 0;
        (match Signal.op s with
        | Const _ | Input _ | Reg _ -> ()
        | _ -> Array.iter (visit (s :: path)) (Signal.args s));
        Hashtbl.replace state (Signal.uid s) 1;
        order := s :: !order
  in
  List.iter (visit []) roots;
  List.rev !order

(* Collect every node reachable from [outputs], following register
   next-state functions. Returns nodes in topological order with sources
   first. *)
let collect outputs =
  let seen = Hashtbl.create 1024 in
  let regs = ref [] in
  let sources = ref [] in
  let comb_roots = ref [] in
  let queue = Queue.create () in
  List.iter (fun s -> Queue.add s queue) outputs;
  let rec walk s =
    if not (Hashtbl.mem seen (Signal.uid s)) then begin
      Hashtbl.replace seen (Signal.uid s) ();
      (match Signal.op s with
      | Const _ | Input _ -> sources := s :: !sources
      | Reg r ->
          regs := s :: !regs;
          sources := s :: !sources;
          (match r.Signal.next with
          | Some next -> Queue.add next queue
          | None -> fail "register %s has no next-state function" r.Signal.reg_name)
      | _ -> Array.iter walk (Signal.args s))
    end
  in
  while not (Queue.is_empty queue) do
    let root = Queue.pop queue in
    comb_roots := root :: !comb_roots;
    walk root
  done;
  let comb = topo_sort (List.rev !comb_roots) in
  (* [comb] already contains sources in post-order; keep a single list with
     sources first for clarity of iteration in consumers. *)
  let is_source s =
    match Signal.op s with Const _ | Input _ | Reg _ -> true | _ -> false
  in
  let srcs, rest = List.partition is_source comb in
  (srcs @ rest, List.rev !regs)

let check_unique what names =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun n ->
      if Hashtbl.mem tbl n then fail "duplicate %s name: %s" what n
      else Hashtbl.replace tbl n ())
    names

let create ~name ?(in_tx = []) ?(out_tx = []) ?(common = []) ?(boundaries = [])
    ~outputs () =
  check_unique "output" (List.map fst outputs);
  let nodes, regs = collect (List.map snd outputs) in
  let inputs =
    List.filter_map
      (fun s -> match Signal.op s with Signal.Input n -> Some (n, s) | _ -> None)
      nodes
    |> List.sort (fun (_, a) (_, b) -> compare (Signal.uid a) (Signal.uid b))
  in
  check_unique "input" (List.map fst inputs);
  check_unique "register"
    (List.map (fun r -> (Signal.reg_of r).Signal.reg_name) regs);
  let topo = Array.of_list nodes in
  let index = Hashtbl.create (Array.length topo) in
  Array.iteri (fun i s -> Hashtbl.replace index (Signal.uid s) i) topo;
  let t =
    {
      name;
      inputs = List.map (fun (n, s) -> { port_name = n; signal = s }) inputs;
      outputs = List.map (fun (n, s) -> { port_name = n; signal = s }) outputs;
      regs;
      topo;
      index;
      in_tx;
      out_tx;
      common;
      boundaries;
    }
  in
  (* Transactions and common annotations must refer to real ports. *)
  let input_names = List.map (fun p -> p.port_name) t.inputs in
  let output_names = List.map (fun p -> p.port_name) t.outputs in
  List.iter
    (fun tx ->
      List.iter
        (fun n ->
          if not (List.mem n input_names) then
            fail "in_tx %s refers to unknown input %s" tx.tx_name n)
        (tx.valid :: tx.payloads))
    in_tx;
  List.iter
    (fun tx ->
      List.iter
        (fun n ->
          if not (List.mem n output_names) then
            fail "out_tx %s refers to unknown output %s" tx.tx_name n)
        (tx.valid :: tx.payloads))
    out_tx;
  List.iter
    (fun n ->
      if not (List.mem n input_names) then fail "common refers to unknown input %s" n)
    common;
  t

let name t = t.name
let inputs t = t.inputs
let outputs t = t.outputs
let regs t = t.regs
let topo t = t.topo
let num_nodes t = Array.length t.topo
let node_index t s = Hashtbl.find t.index (Signal.uid s)
let mem_node t s = Hashtbl.mem t.index (Signal.uid s)
let in_tx t = t.in_tx
let out_tx t = t.out_tx
let common t = t.common
let boundaries t = t.boundaries

let find_port what ports n =
  match List.find_opt (fun p -> p.port_name = n) ports with
  | Some p -> p.signal
  | None -> fail "no %s named %s" what n

let find_input t n = find_port "input" t.inputs n
let find_output t n = find_port "output" t.outputs n

let find_reg t n =
  match
    List.find_opt (fun r -> (Signal.reg_of r).Signal.reg_name = n) t.regs
  with
  | Some r -> r
  | None -> raise Not_found

let state_bits t = List.fold_left (fun acc r -> acc + Signal.width r) 0 t.regs

let pp_stats fmt t =
  Format.fprintf fmt "%s: %d nodes, %d inputs, %d outputs, %d registers (%d state bits)"
    t.name (num_nodes t) (List.length t.inputs) (List.length t.outputs)
    (List.length t.regs) (state_bits t)

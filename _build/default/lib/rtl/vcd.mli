(** Value-change-dump (VCD) output.

    Writes waveforms viewable in GTKWave & co. — the workflow the paper
    follows with JasperGold's waveform viewer when root-causing a CEX. *)

val write :
  path:string ->
  ?timescale:string ->
  ?module_name:string ->
  (string * Bitvec.t array) list ->
  unit
(** [write ~path traces] writes one VCD variable per [(name, values)]
    pair, one timestep per array index. All arrays must have the same
    length, and each signal a consistent width. Raises [Invalid_argument]
    on empty or ragged input. *)

val of_waveform : (Signal.t * Bitvec.t array) list -> (string * Bitvec.t array) list
(** Label a {!Sim.waveform} result with the signals' debug names (falling
    back to a generated label). *)

(** Recursive-descent parser for the SystemVerilog subset.

    Accepts one or more modules per source, with ANSI-style ports and
    named-connection module instantiation. A [//AutoCC Common] comment
    before an input port marks it common, as in the paper's
    annotation. *)

exception Parse_error of string * int (* message, line *)

val parse : string -> Ast.modul
(** Parse the first module of the source. Raises {!Parse_error} or
    {!Lexer.Lex_error}. *)

val parse_program : string -> Ast.modul list
(** Parse every module in the source. *)

val parse_file : string -> Ast.modul
val parse_program_file : string -> Ast.modul list

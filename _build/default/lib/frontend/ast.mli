(** Abstract syntax for the synthesizable SystemVerilog subset.

    The subset covers what {!Rtl.Verilog} emits plus the common idioms of
    hand-written RTL of that style: module declarations with ANSI ports,
    wire/reg/localparam declarations, continuous assignments, and
    [always_ff]/[always @(posedge clk)] blocks with a synchronous-reset
    if/else structure. *)

type range = { msb : int; lsb : int }

type unop = Not  (** [~] *) | Lognot  (** [!] *) | Neg  (** [-] *)

type binop =
  | And
  | Or
  | Xor
  | Logand  (** [&&] *)
  | Logor  (** [||] *)
  | Add
  | Sub
  | Mul
  | Eq
  | Neq
  | Lt
  | Le
  | Gt
  | Ge
  | Shl  (** [<<] *)
  | Shr  (** [>>] *)

type expr =
  | Literal of { width : int option; value : Bitvec.t }
      (** [8'hff], [42], ['0], ['1] *)
  | Ident of string
  | Index of string * expr  (** [x[i]] — constant index only *)
  | Slice of string * int * int  (** [x[hi:lo]] *)
  | Unop of unop * expr
  | Binop of binop * expr * expr
  | Ternary of expr * expr * expr
  | Concat of expr list
  | Repl of int * expr  (** [{n{e}}] *)
  | Signed of expr  (** [$signed(e)] — only sensible under comparisons *)

type direction = Input | Output

type port = {
  dir : direction;
  port_range : range option;
  port_name : string;
  common : bool;  (** preceded by a [//AutoCC Common] comment *)
}

type item =
  | Wire of { range : range option; name : string; init : expr option }
  | Reg_decl of { range : range option; name : string }
  | Localparam of string * expr
  | Assign of string * expr
  | Always of {
      resets : (string * expr) list;  (** register, reset value *)
      updates : (string * expr) list;  (** register, next value *)
    }
  | Instance of {
      mod_type : string;
      inst_name : string;
      conns : (string * expr) list;
          (** named connections [.port(expr)]; output ports must connect
              to plain identifiers *)
    }

type modul = { mod_name : string; ports : port list; items : item list }

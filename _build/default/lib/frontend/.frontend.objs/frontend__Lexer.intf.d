lib/frontend/lexer.mli: Bitvec

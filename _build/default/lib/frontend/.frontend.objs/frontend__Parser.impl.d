lib/frontend/parser.ml: Array Ast Bitvec Lexer List Printf

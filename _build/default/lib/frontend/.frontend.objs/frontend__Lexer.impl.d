lib/frontend/lexer.ml: Bitvec List Printf String

lib/frontend/ast.ml: Bitvec

lib/frontend/elaborate.mli: Ast Rtl

lib/frontend/elaborate.ml: Array Ast Bitvec Hashtbl List Option Parser Printf Rtl String

lib/frontend/ast.mli: Bitvec

type range = { msb : int; lsb : int }
type unop = Not | Lognot | Neg

type binop =
  | And
  | Or
  | Xor
  | Logand
  | Logor
  | Add
  | Sub
  | Mul
  | Eq
  | Neq
  | Lt
  | Le
  | Gt
  | Ge
  | Shl
  | Shr

type expr =
  | Literal of { width : int option; value : Bitvec.t }
  | Ident of string
  | Index of string * expr
  | Slice of string * int * int
  | Unop of unop * expr
  | Binop of binop * expr * expr
  | Ternary of expr * expr * expr
  | Concat of expr list
  | Repl of int * expr
  | Signed of expr

type direction = Input | Output

type port = {
  dir : direction;
  port_range : range option;
  port_name : string;
  common : bool;
}

type item =
  | Wire of { range : range option; name : string; init : expr option }
  | Reg_decl of { range : range option; name : string }
  | Localparam of string * expr
  | Assign of string * expr
  | Always of {
      resets : (string * expr) list;
      updates : (string * expr) list;
    }
  | Instance of {
      mod_type : string;
      inst_name : string;
      conns : (string * expr) list;
    }

type modul = { mod_name : string; ports : port list; items : item list }

(** Elaboration of the parsed SystemVerilog subset into the hardware IR.

    Wires become combinational nodes, [reg]s become registers (with their
    reset values taken from the [if (rst)] branch of the always block, or
    zero), outputs become circuit outputs, and [//AutoCC Common] inputs
    are carried into the circuit's [common] metadata.

    Width semantics follow the synthesizable-Verilog rules this subset
    needs: operands of binary operations are zero-extended to the wider
    side; context-sized literals (['0], ['1], unsized numbers) take the
    width of the other operand or target. Transactions are inferred from
    port naming: a 1-bit port [x_valid] (or [x], when ports [x_*] exist)
    governs same-prefix payload ports — the AutoSVA convention the paper
    reuses. *)

exception Elab_error of string

val elaborate :
  ?infer_transactions:bool -> ?library:Ast.modul list -> Ast.modul -> Rtl.Circuit.t
(** [infer_transactions] defaults to true. [library] supplies the
    definitions of instantiated submodules; the hierarchy is flattened
    with [instance.]-prefixed names and every instance is recorded as a
    blackboxable boundary ({!Rtl.Circuit.boundaries}). *)

val circuit_of_string :
  ?infer_transactions:bool -> ?top:string -> string -> Rtl.Circuit.t
(** Parse and elaborate in one step. With several modules in the source,
    [top] picks the root (default: the first module). *)

val circuit_of_file :
  ?infer_transactions:bool -> ?top:string -> string -> Rtl.Circuit.t

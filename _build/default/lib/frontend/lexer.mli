(** Hand-written lexer for the SystemVerilog subset.

    Comments are skipped, except that a [//AutoCC Common] line comment is
    surfaced as a token so the parser can attach the paper's annotation to
    the next input port. *)

type token =
  | IDENT of string
  | NUMBER of int  (** plain decimal *)
  | BASED of int option * Bitvec.t  (** sized/unsized based literal *)
  | UNBASED of bool  (** '0 / '1 *)
  | KW of string  (** keyword: module, endmodule, input, ... *)
  | LPAREN
  | RPAREN
  | LBRACKET
  | RBRACKET
  | LBRACE
  | RBRACE
  | SEMI
  | COMMA
  | COLON
  | QUESTION
  | AT
  | DOT
  | ASSIGN_EQ  (** [=] *)
  | NONBLOCK  (** [<=] in statement position; also lexes as LE *)
  | OP of string  (** operators: ~ ! & | ^ + - * == != < > <= >= << >> && || *)
  | AUTOCC_COMMON
  | EOF

exception Lex_error of string * int (* message, line *)

val tokenize : string -> (token * int) list
(** Token stream with line numbers. *)

val pp_token : token -> string

open Lexer

exception Parse_error of string * int

type state = { toks : (token * int) array; mutable pos : int }

let peek st = fst st.toks.(st.pos)
let line st = snd st.toks.(st.pos)
let advance st = st.pos <- st.pos + 1

let fail st msg =
  raise (Parse_error (Printf.sprintf "%s (got %s)" msg (pp_token (peek st)), line st))

let eat st t = if peek st = t then advance st else fail st ("expected " ^ pp_token t)

let eat_kw st kw =
  match peek st with
  | KW k when k = kw -> advance st
  | _ -> fail st ("expected keyword " ^ kw)

let ident st =
  match peek st with
  | IDENT s ->
      advance st;
      s
  | _ -> fail st "expected identifier"

(* {1 Expressions}

   Precedence (loosest to tightest): ?: || && | ^ & ==/!= relational
   shift +- * unary primary. *)

let rec expr st = ternary st

and ternary st =
  let c = logor st in
  if peek st = QUESTION then begin
    advance st;
    let t = ternary st in
    eat st COLON;
    let f = ternary st in
    Ast.Ternary (c, t, f)
  end
  else c

and binop_level next ops st =
  let rec go lhs =
    match peek st with
    | OP o when List.mem_assoc o ops ->
        advance st;
        let rhs = next st in
        go (Ast.Binop (List.assoc o ops, lhs, rhs))
    | NONBLOCK when List.mem_assoc "<=" ops ->
        advance st;
        let rhs = next st in
        go (Ast.Binop (List.assoc "<=" ops, lhs, rhs))
    | _ -> lhs
  in
  go (next st)

and logor st = binop_level logand [ ("||", Ast.Logor) ] st
and logand st = binop_level bitor [ ("&&", Ast.Logand) ] st
and bitor st = binop_level bitxor [ ("|", Ast.Or) ] st
and bitxor st = binop_level bitand [ ("^", Ast.Xor) ] st
and bitand st = binop_level equality [ ("&", Ast.And) ] st
and equality st = binop_level relational [ ("==", Ast.Eq); ("!=", Ast.Neq) ] st

and relational st =
  binop_level shift
    [ ("<", Ast.Lt); ("<=", Ast.Le); (">", Ast.Gt); (">=", Ast.Ge) ]
    st

and shift st = binop_level additive [ ("<<", Ast.Shl); (">>", Ast.Shr) ] st
and additive st = binop_level multiplicative [ ("+", Ast.Add); ("-", Ast.Sub) ] st
and multiplicative st = binop_level unary [ ("*", Ast.Mul) ] st

and unary st =
  match peek st with
  | OP "~" ->
      advance st;
      Ast.Unop (Ast.Not, unary st)
  | OP "!" ->
      advance st;
      Ast.Unop (Ast.Lognot, unary st)
  | OP "-" ->
      advance st;
      Ast.Unop (Ast.Neg, unary st)
  | _ -> primary st

and primary st =
  match peek st with
  | NUMBER v ->
      advance st;
      Ast.Literal { width = None; value = Bitvec.of_int ~width:32 v }
  | BASED (w, v) ->
      advance st;
      Ast.Literal
        { width = (match w with Some w -> Some w | None -> None); value = v }
  | UNBASED b ->
      advance st;
      (* Context-sized; elaboration resolves the width. *)
      Ast.Literal { width = Some 0; value = Bitvec.of_bool b }
  | LPAREN ->
      advance st;
      let e = expr st in
      eat st RPAREN;
      e
  | LBRACE ->
      advance st;
      (* Either a concatenation or a replication {n{e}}. *)
      let first = expr st in
      if peek st = LBRACE then begin
        let count =
          match first with
          | Ast.Literal { value; _ } -> Bitvec.to_int value
          | _ -> fail st "replication count must be a literal"
        in
        advance st;
        let e = expr st in
        eat st RBRACE;
        eat st RBRACE;
        Ast.Repl (count, e)
      end
      else begin
        let parts = ref [ first ] in
        while peek st = COMMA do
          advance st;
          parts := expr st :: !parts
        done;
        eat st RBRACE;
        Ast.Concat (List.rev !parts)
      end
  | IDENT "$signed" ->
      advance st;
      eat st LPAREN;
      let e = expr st in
      eat st RPAREN;
      Ast.Signed e
  | IDENT name ->
      advance st;
      if peek st = LBRACKET then begin
        advance st;
        let hi = expr st in
        if peek st = COLON then begin
          advance st;
          let lo = expr st in
          eat st RBRACKET;
          match (hi, lo) with
          | Ast.Literal { value = h; _ }, Ast.Literal { value = l; _ } ->
              Ast.Slice (name, Bitvec.to_int h, Bitvec.to_int l)
          | _ -> fail st "slice bounds must be literals"
        end
        else begin
          eat st RBRACKET;
          Ast.Index (name, hi)
        end
      end
      else Ast.Ident name
  | _ -> fail st "expected expression"

(* {1 Declarations and statements} *)

let range_opt st =
  if peek st = LBRACKET then begin
    advance st;
    let msb = match peek st with NUMBER v -> advance st; v | _ -> fail st "msb" in
    eat st COLON;
    let lsb = match peek st with NUMBER v -> advance st; v | _ -> fail st "lsb" in
    eat st RBRACKET;
    Some { Ast.msb; lsb }
  end
  else None

let skip_net_type st =
  (* optional wire/reg/logic and signedness after a direction keyword *)
  (match peek st with
  | KW ("wire" | "reg" | "logic") -> advance st
  | _ -> ());
  match peek st with KW ("signed" | "unsigned") -> advance st | _ -> ()

let port st ~common =
  let dir =
    match peek st with
    | KW "input" ->
        advance st;
        Ast.Input
    | KW "output" ->
        advance st;
        Ast.Output
    | _ -> fail st "expected input or output"
  in
  skip_net_type st;
  let port_range = range_opt st in
  let port_name = ident st in
  { Ast.dir; port_range; port_name; common }

(* A non-blocking assignment: name <= expr ; *)
let nonblocking st =
  let name = ident st in
  (match peek st with
  | NONBLOCK -> advance st
  | _ -> fail st "expected <=");
  let e = expr st in
  eat st SEMI;
  (name, e)

let rec nonblocking_list st acc =
  match peek st with
  | KW "end" ->
      advance st;
      List.rev acc
  | IDENT _ -> nonblocking_list st (nonblocking st :: acc)
  | _ -> fail st "expected non-blocking assignment or end"

(* always_ff @(posedge clk) begin if (rst) begin ... end else begin ... end end
   Also accepted without a reset branch: begin <assignments> end. *)
let always_block st =
  eat st AT;
  eat st LPAREN;
  eat_kw st "posedge";
  let _clk = ident st in
  eat st RPAREN;
  eat_kw st "begin";
  match peek st with
  | KW "if" ->
      advance st;
      eat st LPAREN;
      let _rst = ident st in
      eat st RPAREN;
      eat_kw st "begin";
      let resets = nonblocking_list st [] in
      eat_kw st "else";
      eat_kw st "begin";
      let updates = nonblocking_list st [] in
      eat_kw st "end";
      Ast.Always { resets; updates }
  | _ ->
      let updates = nonblocking_list st [] in
      Ast.Always { resets = []; updates }

let item st =
  match peek st with
  | KW ("wire" | "logic") ->
      advance st;
      (match peek st with KW ("signed" | "unsigned") -> advance st | _ -> ());
      let range = range_opt st in
      let name = ident st in
      let init =
        if peek st = ASSIGN_EQ then begin
          advance st;
          Some (expr st)
        end
        else None
      in
      eat st SEMI;
      Some (Ast.Wire { range; name; init })
  | KW "reg" ->
      advance st;
      let range = range_opt st in
      let name = ident st in
      eat st SEMI;
      Some (Ast.Reg_decl { range; name })
  | KW ("localparam" | "parameter") ->
      advance st;
      let _ = range_opt st in
      let name = ident st in
      eat st ASSIGN_EQ;
      let e = expr st in
      eat st SEMI;
      Some (Ast.Localparam (name, e))
  | KW "assign" ->
      advance st;
      let name = ident st in
      eat st ASSIGN_EQ;
      let e = expr st in
      eat st SEMI;
      Some (Ast.Assign (name, e))
  | KW ("always_ff" | "always") ->
      advance st;
      Some (always_block st)
  | AUTOCC_COMMON ->
      advance st;
      None (* inside the body the annotation is meaningless; skip *)
  | IDENT _ ->
      (* Module instantiation: <type> <name> ( .port(expr), ... ); *)
      let mod_type = ident st in
      let inst_name = ident st in
      eat st LPAREN;
      let conns = ref [] in
      let rec conn_loop () =
        match peek st with
        | RPAREN -> advance st
        | COMMA ->
            advance st;
            conn_loop ()
        | DOT ->
            advance st;
            let p = ident st in
            eat st LPAREN;
            let e = expr st in
            eat st RPAREN;
            conns := (p, e) :: !conns;
            conn_loop ()
        | _ -> fail st "expected .port(expr) connection"
      in
      conn_loop ();
      eat st SEMI;
      Some (Ast.Instance { mod_type; inst_name; conns = List.rev !conns })
  | _ -> fail st "expected module item"

let parse_module st =
  eat_kw st "module";
  let mod_name = ident st in
  eat st LPAREN;
  let ports = ref [] in
  let rec ports_loop common =
    match peek st with
    | RPAREN -> advance st
    | AUTOCC_COMMON ->
        advance st;
        ports_loop true
    | COMMA ->
        advance st;
        ports_loop false
    | KW ("input" | "output") ->
        ports := port st ~common :: !ports;
        ports_loop false
    | _ -> fail st "expected port declaration"
  in
  ports_loop false;
  eat st SEMI;
  let items = ref [] in
  while peek st <> KW "endmodule" do
    match item st with Some it -> items := it :: !items | None -> ()
  done;
  eat_kw st "endmodule";
  { Ast.mod_name; ports = List.rev !ports; items = List.rev !items }

let parse_program source =
  let st = { toks = Array.of_list (tokenize source); pos = 0 } in
  let mods = ref [] in
  while peek st <> EOF do
    match peek st with
    | AUTOCC_COMMON -> advance st
    | _ -> mods := parse_module st :: !mods
  done;
  List.rev !mods

let parse source =
  match parse_program source with
  | [ m ] -> m
  | [] -> raise (Parse_error ("no module in source", 1))
  | m :: _ -> m

let read_file path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let source = really_input_string ic len in
  close_in ic;
  source

let parse_file path = parse (read_file path)
let parse_program_file path = parse_program (read_file path)

type token =
  | IDENT of string
  | NUMBER of int
  | BASED of int option * Bitvec.t
  | UNBASED of bool
  | KW of string
  | LPAREN
  | RPAREN
  | LBRACKET
  | RBRACKET
  | LBRACE
  | RBRACE
  | SEMI
  | COMMA
  | COLON
  | QUESTION
  | AT
  | DOT
  | ASSIGN_EQ
  | NONBLOCK
  | OP of string
  | AUTOCC_COMMON
  | EOF

exception Lex_error of string * int

let keywords =
  [
    "module"; "endmodule"; "input"; "output"; "inout"; "wire"; "reg";
    "logic"; "assign"; "always"; "always_ff"; "always_comb"; "posedge";
    "negedge"; "begin"; "end"; "if"; "else"; "localparam"; "parameter";
    "signed"; "unsigned";
  ]

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = '$'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let is_hex_digit c =
  is_digit c || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F') || c = '_'

(* Parse the digits of a based literal into a bitvector. The width comes
   from the size prefix if present, otherwise from the digit count. *)
let based_value ~line ~width base digits =
  let digits = String.concat "" (String.split_on_char '_' digits) in
  if digits = "" then raise (Lex_error ("empty literal digits", line));
  let bits_per_digit, radix =
    match base with
    | 'h' | 'H' -> (4, 16)
    | 'b' | 'B' -> (1, 2)
    | 'o' | 'O' -> (3, 8)
    | 'd' | 'D' -> (0, 10)
    | _ -> raise (Lex_error (Printf.sprintf "unknown base %c" base, line))
  in
  let natural_width =
    if radix = 10 then
      max 1
        (let v = int_of_string digits in
         let rec bits n = if n = 0 then 0 else 1 + bits (n / 2) in
         max 1 (bits v))
    else String.length digits * bits_per_digit
  in
  let w = match width with Some w -> w | None -> max natural_width 32 in
  let value =
    if radix = 10 then Bitvec.of_int ~width:w (int_of_string digits)
    else if radix = 16 then Bitvec.of_hex_string ~width:w digits
    else if radix = 2 then
      (* zero-extend or truncate binary digits to the target width *)
      let v = Bitvec.of_binary_string digits in
      if Bitvec.width v = w then v
      else if Bitvec.width v < w then Bitvec.zero_extend v w
      else Bitvec.extract ~hi:(w - 1) ~lo:0 v
    else
      (* octal via int; fine for the widths we use *)
      Bitvec.of_int ~width:w (int_of_string ("0o" ^ digits))
  in
  (width, value)

let tokenize src =
  let n = String.length src in
  let line = ref 1 in
  let toks = ref [] in
  let push t = toks := (t, !line) :: !toks in
  let i = ref 0 in
  let peek k = if !i + k < n then Some src.[!i + k] else None in
  while !i < n do
    let c = src.[!i] in
    if c = '\n' then begin
      incr line;
      incr i
    end
    else if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = '/' && peek 1 = Some '/' then begin
      (* Line comment; surface the AutoCC annotation. *)
      let start = !i + 2 in
      let j = ref start in
      while !j < n && src.[!j] <> '\n' do
        incr j
      done;
      let body = String.trim (String.sub src start (!j - start)) in
      if body = "AutoCC Common" then push AUTOCC_COMMON;
      i := !j
    end
    else if c = '/' && peek 1 = Some '*' then begin
      let j = ref (!i + 2) in
      while
        !j + 1 < n && not (src.[!j] = '*' && src.[!j + 1] = '/')
      do
        if src.[!j] = '\n' then incr line;
        incr j
      done;
      i := !j + 2
    end
    else if is_digit c then begin
      (* Number, possibly the size prefix of a based literal. *)
      let j = ref !i in
      while !j < n && (is_digit src.[!j] || src.[!j] = '_') do
        incr j
      done;
      let digits = String.sub src !i (!j - !i) in
      let k = ref !j in
      while !k < n && (src.[!k] = ' ' || src.[!k] = '\t') do
        incr k
      done;
      if !k < n && src.[!k] = '\'' && !k + 1 < n && is_ident_start src.[!k + 1]
      then begin
        let base = src.[!k + 1] in
        let vstart = !k + 2 in
        let v = ref vstart in
        while !v < n && is_hex_digit src.[!v] do
          incr v
        done;
        let w = int_of_string (String.concat "" (String.split_on_char '_' digits)) in
        let width, value =
          based_value ~line:!line ~width:(Some w) base (String.sub src vstart (!v - vstart))
        in
        push (BASED (width, value));
        i := !v
      end
      else begin
        push (NUMBER (int_of_string (String.concat "" (String.split_on_char '_' digits))));
        i := !j
      end
    end
    else if c = '\'' then begin
      (* '0 / '1 / unsized based literal 'h.. *)
      match peek 1 with
      | Some '0' ->
          push (UNBASED false);
          i := !i + 2
      | Some '1' ->
          push (UNBASED true);
          i := !i + 2
      | Some b when is_ident_start b ->
          let vstart = !i + 2 in
          let v = ref vstart in
          while !v < n && is_hex_digit src.[!v] do
            incr v
          done;
          let width, value =
            based_value ~line:!line ~width:None b (String.sub src vstart (!v - vstart))
          in
          push (BASED (width, value));
          i := !v
      | _ -> raise (Lex_error ("stray quote", !line))
    end
    else if is_ident_start c then begin
      let j = ref !i in
      while !j < n && is_ident_char src.[!j] do
        incr j
      done;
      let word = String.sub src !i (!j - !i) in
      if List.mem word keywords then push (KW word) else push (IDENT word);
      i := !j
    end
    else begin
      let two = if !i + 1 < n then String.sub src !i 2 else "" in
      (match two with
      | "==" | "!=" | "&&" | "||" | ">>" | "<<" | ">=" ->
          push (OP two);
          i := !i + 2
      | "<=" ->
          (* Disambiguated by the parser: non-blocking assignment in
             statement position, less-or-equal in expressions. *)
          push NONBLOCK;
          i := !i + 2
      | _ ->
          (match c with
          | '(' -> push LPAREN
          | ')' -> push RPAREN
          | '[' -> push LBRACKET
          | ']' -> push RBRACKET
          | '{' -> push LBRACE
          | '}' -> push RBRACE
          | ';' -> push SEMI
          | ',' -> push COMMA
          | ':' -> push COLON
          | '?' -> push QUESTION
          | '@' -> push AT
          | '.' -> push DOT
          | '=' -> push ASSIGN_EQ
          | '~' | '!' | '&' | '|' | '^' | '+' | '-' | '*' | '<' | '>' ->
              push (OP (String.make 1 c))
          | _ -> raise (Lex_error (Printf.sprintf "unexpected character %c" c, !line)));
          incr i)
    end
  done;
  push EOF;
  List.rev !toks

let pp_token = function
  | IDENT s -> Printf.sprintf "IDENT(%s)" s
  | NUMBER v -> Printf.sprintf "NUMBER(%d)" v
  | BASED (Some w, v) -> Printf.sprintf "BASED(%d'%s)" w (Bitvec.to_hex_string v)
  | BASED (None, v) -> Printf.sprintf "BASED('%s)" (Bitvec.to_hex_string v)
  | UNBASED b -> Printf.sprintf "UNBASED(%b)" b
  | KW s -> Printf.sprintf "KW(%s)" s
  | LPAREN -> "("
  | RPAREN -> ")"
  | LBRACKET -> "["
  | RBRACKET -> "]"
  | LBRACE -> "{"
  | RBRACE -> "}"
  | SEMI -> ";"
  | COMMA -> ","
  | COLON -> ":"
  | QUESTION -> "?"
  | AT -> "@"
  | DOT -> "."
  | ASSIGN_EQ -> "="
  | NONBLOCK -> "<="
  | OP s -> Printf.sprintf "OP(%s)" s
  | AUTOCC_COMMON -> "//AutoCC Common"
  | EOF -> "EOF"

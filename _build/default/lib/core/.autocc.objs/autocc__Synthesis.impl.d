lib/core/synthesis.ml: Bmc Flush Ft List Rtl

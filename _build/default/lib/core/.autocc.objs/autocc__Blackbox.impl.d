lib/core/blackbox.ml: Array Hashtbl List Printf Rtl

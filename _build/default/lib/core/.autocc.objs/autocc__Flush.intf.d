lib/core/flush.mli: Ft Rtl

lib/core/ft.mli: Bitvec Bmc Rtl

lib/core/blackbox.mli: Rtl

lib/core/ft.ml: Array Bitvec Blackbox Bmc List Rtl

lib/core/synthesis.mli: Rtl

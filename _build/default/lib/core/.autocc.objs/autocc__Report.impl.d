lib/core/report.ml: Array Bitvec Bmc Format Ft List Printf Rtl String

lib/core/sva.mli: Rtl

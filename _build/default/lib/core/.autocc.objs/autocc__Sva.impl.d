lib/core/sva.ml: Buffer Filename Fun List Printf Rtl String Sys

lib/core/report.mli: Bmc Format Ft

lib/core/flush.ml: List Printf Rtl

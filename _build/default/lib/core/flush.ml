module Signal = Rtl.Signal
module Circuit = Rtl.Circuit

let instrument ?(flush_input = "flush") ~regs circuit =
  List.iter
    (fun n ->
      match Circuit.find_reg circuit n with
      | _ -> ()
      | exception Not_found ->
          failwith (Printf.sprintf "Flush.instrument: no register named %s" n))
    regs;
  let flush = Signal.input flush_input 1 in
  let outputs', _ =
    Rtl.Transform.clone_outputs circuit ~instrument_next:(fun ~reg ~next ->
        let payload = Signal.reg_of reg in
        if List.mem payload.Signal.reg_name regs then
          Signal.mux2 flush (Signal.const payload.Signal.init) next
        else next)
  in
  (* The flush wire must reach the elaborated graph even when the flush
     set is empty; anchor it through an output. *)
  Circuit.create
    ~name:(Circuit.name circuit ^ "_flush")
    ~in_tx:(Circuit.in_tx circuit)
    ~out_tx:(Circuit.out_tx circuit)
    ~common:(flush_input :: Circuit.common circuit)
    ~outputs:(outputs' @ [ (flush_input ^ "_active", flush) ])
    ()

let flush_done_of_input ?(flush_input = "flush") () dut map_a _map_b =
  (* The flush input is common, so mapping it into either universe yields
     the single shared wire. *)
  map_a (Circuit.find_input dut flush_input)

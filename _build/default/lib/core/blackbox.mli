(** Blackboxing: abstracting a submodule away from the verification engine.

    Cutting a named submodule boundary moves the submodule outside the
    DUT while leaving its wires intact (Sec. 3.4 of the paper): signals
    the submodule used to drive become fresh primary inputs
    ([bb_<boundary>_<signal>]), and the signals feeding the submodule
    become primary outputs of the cut circuit. The state inside the
    boundary disappears from the DUT, and the new wires are subject to
    the same AutoCC input assumptions / output assertions as any other
    interface signal. *)

val cut : Rtl.Circuit.t -> string list -> Rtl.Circuit.t
(** [cut circuit names] cuts every boundary in [names]. Raises [Failure]
    if a name does not match a boundary declared by the circuit. *)

(** SystemVerilog-Assertions export of the AutoCC testbench.

    The paper's tool emits (1) a wrapper with two instances of the DUT,
    (2) a property file in SVA following Listing 1, and (3) a
    backend-specific command file. This module reproduces that flow for
    the open-source SBY backend: together with {!Rtl.Verilog} it writes a
    self-contained directory that an external [sby] installation can
    check, so designs modeled here can be cross-verified with a second,
    independent FPV engine.

    The generated properties are exactly the built-in ones: per-input
    assumptions and per-output assertions guarded by [spy_mode],
    transaction payloads gated by their valids, [architectural_state_eq]
    over the chosen registers (via hierarchical references into the two
    instances), and the [eq_cnt]/[spy_mode] monitor of Listing 1. *)

val wrapper :
  ?threshold:int ->
  ?common:string list ->
  ?arch_regs:string list ->
  Rtl.Circuit.t ->
  string
(** The FT wrapper module [ft_<name>] as SystemVerilog source, including
    the assume/assert properties. [flush_done] is exposed as a free input
    of the wrapper, as in the default Listing 1 template; constrain it in
    the wrapper or leave it symbolic. *)

val sby_config : ?depth:int -> ?engine:string -> Rtl.Circuit.t -> string
(** An SBY project file running BMC to [depth] (default 25) with
    [engine] (default ["smtbmc"]). *)

val jg_tcl : ?depth:int -> Rtl.Circuit.t -> string
(** A JasperGold command file (FPV.tcl) for the generated testbench — the
    other backend the paper evaluates with. *)

val write_flow :
  dir:string ->
  ?threshold:int ->
  ?common:string list ->
  ?arch_regs:string list ->
  ?depth:int ->
  Rtl.Circuit.t ->
  unit
(** Write [<name>.sv] (the DUT), [ft_<name>.sv] (the wrapper),
    [<name>.sby] and [FPV.tcl] into [dir] (created if missing). *)

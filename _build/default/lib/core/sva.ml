module Signal = Rtl.Signal
module Circuit = Rtl.Circuit

let clog2 n =
  let rec go acc v = if v >= n then acc else go (acc + 1) (2 * v) in
  go 0 1

let san = Rtl.Verilog.sanitize
let width_decl w = if w = 1 then "" else Printf.sprintf "[%d:0] " (w - 1)

(* The transaction (if any) governing a given port name. *)
let tx_of txs name =
  List.find_opt (fun tx -> List.mem name tx.Circuit.payloads) txs

let wrapper ?(threshold = 4) ?(common = []) ?(arch_regs = []) dut =
  let buf = Buffer.create 4096 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let name = san (Circuit.name dut) in
  let common = List.sort_uniq compare (common @ Circuit.common dut) in
  let is_common p = List.mem p.Circuit.port_name common in
  let dup_inputs = List.filter (fun p -> not (is_common p)) (Circuit.inputs dut) in
  let common_inputs = List.filter is_common (Circuit.inputs dut) in
  let outputs = Circuit.outputs dut in
  let port_w p = Signal.width p.Circuit.signal in
  (* {2 Header} *)
  pr "// AutoCC FPV testbench for %s -- generated, do not edit.\n" name;
  pr "// Methodology: two universes, transfer period, spy-mode properties\n";
  pr "// (Listing 1 of the AutoCC paper).\n";
  pr "module ft_%s (\n" name;
  pr "  input wire clk,\n  input wire rst,\n";
  List.iter
    (fun p ->
      pr "  input wire %s%s,\n" (width_decl (port_w p)) (san p.Circuit.port_name))
    common_inputs;
  List.iter
    (fun p ->
      pr "  input wire %sa_%s,\n" (width_decl (port_w p)) (san p.Circuit.port_name);
      pr "  input wire %sb_%s,\n" (width_decl (port_w p)) (san p.Circuit.port_name))
    dup_inputs;
  pr "  input wire flush_done\n);\n\n";
  pr "  localparam THRESHOLD = %d;\n\n" threshold;
  (* {2 Instances} *)
  List.iter
    (fun u ->
      List.iter
        (fun p ->
          pr "  wire %s%s_%s;\n" (width_decl (port_w p)) u (san p.Circuit.port_name))
        outputs;
      pr "  %s u%s (\n    .clk(clk),\n    .rst(rst),\n" name u;
      let connections =
        List.map
          (fun p ->
            let n = san p.Circuit.port_name in
            if is_common p then Printf.sprintf "    .%s(%s)" n n
            else Printf.sprintf "    .%s(%s_%s)" n u n)
          (Circuit.inputs dut)
        @ List.map
            (fun p ->
              let n = san p.Circuit.port_name in
              Printf.sprintf "    .%s(%s_%s)" n u n)
            outputs
      in
      pr "%s\n  );\n\n" (String.concat ",\n" connections))
    [ "a"; "b" ];
  (* {2 Equality wires} *)
  let eq_wire txs p =
    let n = san p.Circuit.port_name in
    match tx_of txs p.Circuit.port_name with
    | None -> pr "  wire %s_eq = a_%s == b_%s;\n" n n n
    | Some tx ->
        (* Payloads compared only while the transaction is valid. *)
        pr "  wire %s_eq = !a_%s || a_%s == b_%s;\n" n (san tx.Circuit.valid) n n
  in
  List.iter (eq_wire (Circuit.in_tx dut)) dup_inputs;
  List.iter (eq_wire (Circuit.out_tx dut)) outputs;
  (* {2 Architectural state} *)
  (match arch_regs with
  | [] -> pr "\n  wire architectural_state_eq = 1'b1; // refine as CEXs are found\n"
  | regs ->
      pr "\n  wire architectural_state_eq =\n";
      pr "%s;\n"
        (String.concat " &&\n"
           (List.map
              (fun r -> Printf.sprintf "    ua.%s == ub.%s" (san r) (san r))
              regs)));
  (* {2 Transfer period and spy mode (Listing 1)} *)
  let all_eqs =
    List.map (fun p -> san p.Circuit.port_name ^ "_eq") (dup_inputs @ outputs)
  in
  pr "\n  wire transfer_cond = architectural_state_eq";
  List.iter (fun e -> pr "\n    && %s" e) all_eqs;
  pr ";\n\n";
  pr "  reg [%d:0] eq_cnt;\n" (clog2 (threshold + 1));
  pr "  reg spy_mode;\n";
  pr "  wire spy_starts = transfer_cond && eq_cnt >= THRESHOLD;\n\n";
  pr "  always_ff @(posedge clk)\n";
  pr "    if (rst) begin\n      spy_mode <= '0;\n      eq_cnt <= '0;\n";
  pr "    end else begin\n";
  pr "      spy_mode <= spy_starts || spy_mode;\n";
  pr "      eq_cnt <= (flush_done || eq_cnt > 0) && transfer_cond\n";
  pr "                ? (eq_cnt >= THRESHOLD ? eq_cnt : eq_cnt + 1'b1) : '0;\n";
  pr "    end\n\n";
  (* {2 Properties} *)
  List.iter
    (fun p ->
      pr "  am__%s_eq: assume property (@(posedge clk) spy_mode |-> %s_eq);\n"
        (san p.Circuit.port_name) (san p.Circuit.port_name))
    dup_inputs;
  pr "\n";
  List.iter
    (fun p ->
      pr "  as__%s_eq: assert property (@(posedge clk) spy_mode |-> %s_eq);\n"
        (san p.Circuit.port_name) (san p.Circuit.port_name))
    outputs;
  pr "\nendmodule\n";
  Buffer.contents buf

let sby_config ?(depth = 25) ?(engine = "smtbmc") dut =
  let name = san (Circuit.name dut) in
  String.concat "\n"
    [
      "[options]";
      "mode bmc";
      Printf.sprintf "depth %d" depth;
      "";
      "[engines]";
      engine;
      "";
      "[script]";
      Printf.sprintf "read -formal %s.sv" name;
      Printf.sprintf "read -formal ft_%s.sv" name;
      Printf.sprintf "prep -top ft_%s" name;
      "";
      "[files]";
      Printf.sprintf "%s.sv" name;
      Printf.sprintf "ft_%s.sv" name;
      "";
    ]

let jg_tcl ?(depth = 25) dut =
  let name = san (Circuit.name dut) in
  String.concat "\n"
    [
      "# JasperGold bindings for the AutoCC testbench -- generated.";
      Printf.sprintf "analyze -sv12 %s.sv" name;
      Printf.sprintf "analyze -sv12 ft_%s.sv" name;
      Printf.sprintf "elaborate -top ft_%s" name;
      "clock clk";
      "reset rst";
      Printf.sprintf "set_max_trace_length %d" depth;
      "prove -all";
      "report";
      "";
    ]

let write_flow ~dir ?threshold ?common ?arch_regs ?depth dut =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let name = san (Circuit.name dut) in
  let write file contents =
    let oc = open_out (Filename.concat dir file) in
    Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc contents)
  in
  write (name ^ ".sv") (Rtl.Verilog.to_string dut);
  write ("ft_" ^ name ^ ".sv") (wrapper ?threshold ?common ?arch_regs dut);
  write (name ^ ".sby") (sby_config ?depth dut);
  write "FPV.tcl" (jg_tcl ?depth dut)

(** Flush instrumentation.

    Temporal partitioning (Sec. 3.5) resets microarchitectural state
    between processes. [instrument] adds a 1-bit [flush] input to a DUT:
    while it is asserted, every register in the flush set loads its
    initial value instead of its normal next-state value. The instrumented
    circuit marks the flush input common, so both universes of a generated
    FT flush on the same cycles — matching the paper's model in which the
    two flushes complete together. *)

val instrument :
  ?flush_input:string -> regs:string list -> Rtl.Circuit.t -> Rtl.Circuit.t
(** [instrument ~regs circuit] returns a circuit with an added common
    input (default name ["flush"]) that synchronously resets the named
    registers. Unknown register names raise [Failure]. *)

val flush_done_of_input :
  ?flush_input:string ->
  unit ->
  Rtl.Circuit.t ->
  Ft.mapping ->
  Ft.mapping ->
  Rtl.Signal.t
(** A [flush_done] condition for {!Ft.generate} that fires on the cycles
    where the (shared) flush input of an instrumented DUT is asserted. *)

module Signal = Rtl.Signal
module Circuit = Rtl.Circuit

let cut circuit names =
  let boundaries = Circuit.boundaries circuit in
  List.iter
    (fun n ->
      if not (List.exists (fun b -> b.Circuit.bnd_name = n) boundaries) then
        failwith
          (Printf.sprintf "Blackbox.cut: no boundary named %s in %s" n
             (Circuit.name circuit)))
    names;
  let cut_bnds, kept_bnds =
    List.partition (fun b -> List.mem b.Circuit.bnd_name names) boundaries
  in
  let wire_name b (sig_name, _) =
    Printf.sprintf "bb_%s_%s" b.Circuit.bnd_name sig_name
  in
  (* Fresh inputs replacing what the cut submodules used to drive. *)
  let replacements =
    List.concat_map
      (fun b ->
        List.map
          (fun ((_, s) as w) ->
            (Signal.uid s, Signal.input (wire_name b w) (Signal.width s)))
          b.Circuit.bnd_outputs)
      cut_bnds
  in
  let subst s = List.assoc_opt (Signal.uid s) replacements in
  (* The signals feeding the cut submodules become observable outputs. *)
  let exposed =
    List.concat_map
      (fun b -> List.map (fun ((_, s) as w) -> (wire_name b w, s)) b.Circuit.bnd_inputs)
      cut_bnds
  in
  let old_outputs =
    List.map (fun p -> (p.Circuit.port_name, p.Circuit.signal)) (Circuit.outputs circuit)
  in
  (* One rebuild over all roots so old outputs and exposed wires share the
     copied graph. *)
  let roots = List.map snd old_outputs @ List.map snd exposed in
  let roots', mapping = Rtl.Transform.rebuild ~subst roots in
  let labels = List.map fst old_outputs @ List.map fst exposed in
  let outputs' = List.combine labels roots' in
  let remap_bnd b =
    let remap l =
      List.filter_map (fun (n, s) -> try Some (n, mapping s) with Not_found -> None) l
    in
    {
      Circuit.bnd_name = b.Circuit.bnd_name;
      bnd_outputs = remap b.Circuit.bnd_outputs;
      bnd_inputs = remap b.Circuit.bnd_inputs;
    }
  in
  (* Inputs that only fed the cut submodules are gone; restrict the
     transaction and common metadata to the surviving inputs. *)
  let live_inputs =
    let seen = Hashtbl.create 256 in
    let found = Hashtbl.create 16 in
    let rec walk s =
      if not (Hashtbl.mem seen (Signal.uid s)) then begin
        Hashtbl.replace seen (Signal.uid s) ();
        (match Signal.op s with
        | Signal.Input n -> Hashtbl.replace found n ()
        | Signal.Reg r -> (
            match r.Signal.next with Some nx -> walk nx | None -> ())
        | _ -> ());
        Array.iter walk (Signal.args s)
      end
    in
    List.iter (fun (_, s) -> walk s) outputs';
    fun n -> Hashtbl.mem found n
  in
  let in_tx =
    List.filter_map
      (fun tx ->
        if live_inputs tx.Circuit.valid then
          match List.filter live_inputs tx.Circuit.payloads with
          | [] -> None
          | payloads -> Some { tx with Circuit.payloads }
        else None)
      (Circuit.in_tx circuit)
  in
  Circuit.create
    ~name:(Circuit.name circuit ^ "_bb")
    ~in_tx
    ~out_tx:(Circuit.out_tx circuit)
    ~common:(List.filter live_inputs (Circuit.common circuit))
    ~boundaries:(List.map remap_bnd kept_bnds)
    ~outputs:outputs' ()

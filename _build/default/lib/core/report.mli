(** Human-readable counterexample analysis.

    The paper highlights that AutoCC counterexamples are short and easy to
    root-cause; this module renders a CEX the way Sec. 4 walks through
    them: which assertion fired, at what depth, when spy mode began, which
    microarchitectural state differed between the universes at that
    moment, and the per-cycle input trace. *)

val explain : Format.formatter -> Ft.t -> Bmc.cex -> unit

val summary : Ft.t -> Bmc.cex -> string
(** One-line summary: failing assertions, depth, and the differing state
    at spy start. *)

val first_divergence : Ft.t -> Bmc.cex -> (string * int) list
(** For every DUT register that ever differs between the universes along
    the counterexample trace, the first cycle at which it does —
    earliest first. The head of this list is usually the true root cause;
    registers that diverge later are downstream effects. *)

val dump_vcd : path:string -> Ft.t -> Bmc.cex -> unit
(** Write the counterexample as a VCD waveform: the monitor signals
    (spy_mode, transfer_cond, eq_cnt, flush_done), every DUT output in
    both universes, and every DUT register pair — the signal set one
    loads into the waveform viewer in the paper's appendix walkthrough. *)

let diff_at ft cex =
  match Ft.spy_start_cycle ft cex with
  | None -> (None, [])
  | Some cycle -> (Some cycle, Ft.state_diff ft cex ~cycle)

let first_divergence ft cex =
  let module Signal = Rtl.Signal in
  let module Circuit = Rtl.Circuit in
  let pairs =
    List.map
      (fun r -> ((Signal.reg_of r).Signal.reg_name, ft.Ft.map_a r, ft.Ft.map_b r))
      (Circuit.regs ft.Ft.dut)
  in
  let watched = List.concat_map (fun (_, a, b) -> [ a; b ]) pairs in
  let values = Bmc.replay_values cex watched in
  let arr s = List.assq s values in
  List.filter_map
    (fun (name, a, b) ->
      let va = arr a and vb = arr b in
      let n = Array.length va in
      let rec find i =
        if i >= n then None
        else if not (Bitvec.equal va.(i) vb.(i)) then Some (name, i)
        else find (i + 1)
      in
      find 0)
    pairs
  |> List.stable_sort (fun (_, c1) (_, c2) -> compare c1 c2)

let explain fmt ft cex =
  Format.fprintf fmt "=== AutoCC counterexample ===@.";
  Format.fprintf fmt "DUT: %s@." (Rtl.Circuit.name ft.Ft.dut);
  Format.fprintf fmt "Failing assertion(s): %s@."
    (String.concat ", " cex.Bmc.cex_failed);
  Format.fprintf fmt "Depth: %d cycles@." (cex.Bmc.cex_depth + 1);
  (match diff_at ft cex with
  | None, _ -> Format.fprintf fmt "Spy mode never set along the trace (unexpected).@."
  | Some cycle, diffs ->
      Format.fprintf fmt "Spy process begins at cycle %d.@." cycle;
      if diffs = [] then
        Format.fprintf fmt
          "No register differs at spy start: divergence is in-flight (pipeline contents).@."
      else begin
        Format.fprintf fmt
          "Microarchitectural state differing at spy start (alpha vs beta):@.";
        List.iter
          (fun (name, va, vb) ->
            Format.fprintf fmt "  %-32s %s vs %s@." name
              (Bitvec.to_hex_string va) (Bitvec.to_hex_string vb))
          diffs
      end);
  (match first_divergence ft cex with
  | [] -> ()
  | (root, cycle) :: _ as all ->
      Format.fprintf fmt "Earliest state divergence: %s at cycle %d%s@." root cycle
        (match all with
        | _ :: (next, c2) :: _ -> Printf.sprintf " (then %s at cycle %d)" next c2
        | _ -> ""));
  Format.fprintf fmt "Input trace:@.";
  Bmc.pp_cex fmt cex

let summary ft cex =
  let _, diffs = diff_at ft cex in
  let culprits =
    match diffs with
    | [] -> "in-flight state"
    | l -> String.concat "," (List.map (fun (n, _, _) -> n) l)
  in
  Printf.sprintf "%s @ depth %d via %s"
    (String.concat "," cex.Bmc.cex_failed)
    (cex.Bmc.cex_depth + 1) culprits

let dump_vcd ~path ft cex =
  let module Signal = Rtl.Signal in
  let module Circuit = Rtl.Circuit in
  let dut = ft.Ft.dut in
  let monitor =
    [
      ("spy_mode", ft.Ft.spy_mode);
      ("transfer_cond", ft.Ft.transfer_cond);
      ("eq_cnt", ft.Ft.eq_cnt);
      ("flush_done", ft.Ft.flush_done);
    ]
  in
  let per_universe prefix m =
    List.map
      (fun p -> (prefix ^ p.Circuit.port_name, m p.Circuit.signal))
      (Circuit.outputs dut)
    @ List.map
        (fun r -> (prefix ^ (Signal.reg_of r).Signal.reg_name, m r))
        (Circuit.regs dut)
  in
  let labelled =
    monitor @ per_universe "ua." ft.Ft.map_a @ per_universe "ub." ft.Ft.map_b
  in
  let values = Bmc.replay_values cex (List.map snd labelled) in
  let traces =
    List.map2 (fun (label, _) (_, vs) -> (label, vs)) labelled values
  in
  Rtl.Vcd.write ~path ~module_name:(Circuit.name dut ^ "_ft") traces

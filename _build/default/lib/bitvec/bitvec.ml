(* Bitvectors stored as arrays of [limb_bits]-bit limbs, least significant
   limb first. The top limb is kept normalized: bits above [width] are
   always zero, so structural equality coincides with value equality. Limbs
   hold 31 bits so that products of two limbs fit in a 63-bit OCaml int. *)

let limb_bits = 31
let limb_mask = (1 lsl limb_bits) - 1

type t = { width : int; limbs : int array }

let nlimbs width = (width + limb_bits - 1) / limb_bits

(* Mask for the top limb of a vector of width [w]. *)
let top_mask width =
  let r = width mod limb_bits in
  if r = 0 then limb_mask else (1 lsl r) - 1

let normalize v =
  let n = Array.length v.limbs in
  v.limbs.(n - 1) <- v.limbs.(n - 1) land top_mask v.width;
  v

let create width =
  if width < 1 then invalid_arg "Bitvec: width must be >= 1";
  { width; limbs = Array.make (nlimbs width) 0 }

let zero width = create width

let ones width =
  let v = create width in
  Array.fill v.limbs 0 (Array.length v.limbs) limb_mask;
  normalize v

let width v = v.width

let bit v i =
  if i < 0 || i >= v.width then invalid_arg "Bitvec.bit: index out of range";
  v.limbs.(i / limb_bits) lsr (i mod limb_bits) land 1 = 1

(* Set bit in place; only used during construction. *)
let set_bit_mut v i b =
  let j = i / limb_bits and k = i mod limb_bits in
  if b then v.limbs.(j) <- v.limbs.(j) lor (1 lsl k)
  else v.limbs.(j) <- v.limbs.(j) land lnot (1 lsl k)

let of_int ~width:w n =
  let v = create w in
  let n = ref n in
  for i = 0 to Array.length v.limbs - 1 do
    v.limbs.(i) <- !n land limb_mask;
    (* Arithmetic shift keeps the sign bits flowing for negative [n]. *)
    n := !n asr limb_bits
  done;
  normalize v

let one w = of_int ~width:w 1
let of_bool b = of_int ~width:1 (if b then 1 else 0)

let of_bits bits =
  let w = Array.length bits in
  if w = 0 then invalid_arg "Bitvec.of_bits: empty";
  let v = create w in
  Array.iteri (fun i b -> if b then set_bit_mut v i true) bits;
  v

let of_binary_string s =
  let digits =
    String.to_seq s |> Seq.filter (fun c -> c <> '_') |> List.of_seq
  in
  if digits = [] then invalid_arg "Bitvec.of_binary_string: empty";
  let w = List.length digits in
  let v = create w in
  List.iteri
    (fun i c ->
      match c with
      | '0' -> ()
      | '1' -> set_bit_mut v (w - 1 - i) true
      | _ -> invalid_arg "Bitvec.of_binary_string: bad digit")
    digits;
  v

let of_hex_string ~width:w s =
  let digit c =
    match c with
    | '0' .. '9' -> Char.code c - Char.code '0'
    | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
    | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
    | _ -> invalid_arg "Bitvec.of_hex_string: bad digit"
  in
  let digits =
    String.to_seq s |> Seq.filter (fun c -> c <> '_') |> List.of_seq
  in
  if digits = [] then invalid_arg "Bitvec.of_hex_string: empty";
  let v = create w in
  let n = List.length digits in
  List.iteri
    (fun i c ->
      let d = digit c in
      let base = (n - 1 - i) * 4 in
      for k = 0 to 3 do
        if base + k < w && d lsr k land 1 = 1 then set_bit_mut v (base + k) true
      done)
    digits;
  v

let to_bits v = Array.init v.width (bit v)

let to_int v =
  let n = Array.length v.limbs in
  let acc = ref 0 in
  for i = n - 1 downto 0 do
    if i * limb_bits < 62 then acc := (!acc lsl limb_bits) lor v.limbs.(i)
    else if v.limbs.(i) <> 0 then
      invalid_arg "Bitvec.to_int: value does not fit in int"
  done;
  if !acc < 0 then invalid_arg "Bitvec.to_int: value does not fit in int";
  !acc

let msb v = bit v (v.width - 1)

let to_binary_string v =
  String.init v.width (fun i -> if bit v (v.width - 1 - i) then '1' else '0')

let to_hex_string v =
  let ndigits = (v.width + 3) / 4 in
  String.init ndigits (fun i ->
      let base = (ndigits - 1 - i) * 4 in
      let d = ref 0 in
      for k = 3 downto 0 do
        d := (!d lsl 1) lor (if base + k < v.width && bit v (base + k) then 1 else 0)
      done;
      "0123456789abcdef".[!d])

let is_zero v = Array.for_all (fun l -> l = 0) v.limbs
let is_ones v = v.limbs = (ones v.width).limbs
let reduce_or v = not (is_zero v)
let reduce_and v = is_ones v

let reduce_xor v =
  let parity = ref false in
  Array.iter
    (fun l ->
      let l = ref l in
      while !l <> 0 do
        parity := not !parity;
        l := !l land (!l - 1)
      done)
    v.limbs;
  !parity

let check_same_width op a b =
  if a.width <> b.width then
    invalid_arg (Printf.sprintf "Bitvec.%s: width mismatch (%d vs %d)" op a.width b.width)

let map2 op f a b =
  check_same_width op a b;
  normalize
    { width = a.width; limbs = Array.map2 (fun x y -> f x y) a.limbs b.limbs }

let logand a b = map2 "logand" ( land ) a b
let logor a b = map2 "logor" ( lor ) a b
let logxor a b = map2 "logxor" ( lxor ) a b

let lognot a =
  normalize { width = a.width; limbs = Array.map (fun x -> lnot x land limb_mask) a.limbs }

let add a b =
  check_same_width "add" a b;
  let n = Array.length a.limbs in
  let out = Array.make n 0 in
  let carry = ref 0 in
  for i = 0 to n - 1 do
    let s = a.limbs.(i) + b.limbs.(i) + !carry in
    out.(i) <- s land limb_mask;
    carry := s lsr limb_bits
  done;
  normalize { width = a.width; limbs = out }

let neg a = add (lognot a) (one a.width)
let sub a b = check_same_width "sub" a b; add a (neg b)

let mul a b =
  check_same_width "mul" a b;
  let n = Array.length a.limbs in
  let out = Array.make n 0 in
  for i = 0 to n - 1 do
    if a.limbs.(i) <> 0 then begin
      let carry = ref 0 in
      for j = 0 to n - 1 - i do
        let p = (a.limbs.(i) * b.limbs.(j)) + out.(i + j) + !carry in
        out.(i + j) <- p land limb_mask;
        carry := p lsr limb_bits
      done
    end
  done;
  normalize { width = a.width; limbs = out }

let equal a b =
  check_same_width "equal" a b;
  a.limbs = b.limbs

let compare a b =
  check_same_width "compare" a b;
  let n = Array.length a.limbs in
  let rec go i =
    if i < 0 then 0
    else if a.limbs.(i) <> b.limbs.(i) then Stdlib.compare a.limbs.(i) b.limbs.(i)
    else go (i - 1)
  in
  go (n - 1)

let ult a b = compare a b < 0
let ule a b = compare a b <= 0

let slt a b =
  check_same_width "slt" a b;
  match (msb a, msb b) with
  | true, false -> true
  | false, true -> false
  | _ -> ult a b

let sle a b = slt a b || equal a b

let shift_left a k =
  if k < 0 then invalid_arg "Bitvec.shift_left: negative shift";
  let v = create a.width in
  for i = 0 to a.width - 1 - k do
    if bit a i then set_bit_mut v (i + k) true
  done;
  v

let shift_right_logical a k =
  if k < 0 then invalid_arg "Bitvec.shift_right_logical: negative shift";
  let v = create a.width in
  for i = k to a.width - 1 do
    if bit a i then set_bit_mut v (i - k) true
  done;
  v

let shift_right_arith a k =
  if k < 0 then invalid_arg "Bitvec.shift_right_arith: negative shift";
  let v = shift_right_logical a k in
  if msb a then
    for i = max 0 (a.width - k) to a.width - 1 do
      set_bit_mut v i true
    done;
  v

let extract ~hi ~lo a =
  if lo < 0 || hi >= a.width || hi < lo then
    invalid_arg
      (Printf.sprintf "Bitvec.extract: bad range [%d:%d] of width %d" hi lo a.width);
  let v = create (hi - lo + 1) in
  for i = lo to hi do
    if bit a i then set_bit_mut v (i - lo) true
  done;
  v

let concat hi lo =
  let v = create (hi.width + lo.width) in
  for i = 0 to lo.width - 1 do
    if bit lo i then set_bit_mut v i true
  done;
  for i = 0 to hi.width - 1 do
    if bit hi i then set_bit_mut v (i + lo.width) true
  done;
  v

let concat_list = function
  | [] -> invalid_arg "Bitvec.concat_list: empty"
  | x :: rest -> List.fold_left (fun acc v -> concat acc v) x rest

let zero_extend a w =
  if w < a.width then invalid_arg "Bitvec.zero_extend: narrower target";
  if w = a.width then a
  else
    let v = create w in
    Array.blit a.limbs 0 v.limbs 0 (Array.length a.limbs);
    normalize v

let sign_extend a w =
  if w < a.width then invalid_arg "Bitvec.sign_extend: narrower target";
  if w = a.width then a
  else if not (msb a) then zero_extend a w
  else
    let v = ones w in
    for i = 0 to a.width - 1 do
      set_bit_mut v i (bit a i)
    done;
    v

let repeat a n =
  if n < 1 then invalid_arg "Bitvec.repeat: count must be >= 1";
  let rec go acc k = if k = 0 then acc else go (concat acc a) (k - 1) in
  go a (n - 1)

let to_signed_int v =
  if msb v then
    let m = to_int (neg v) in
    -m
  else to_int v

let random st w =
  let v = create w in
  for i = 0 to Array.length v.limbs - 1 do
    v.limbs.(i) <- Random.State.full_int st (limb_mask + 1)
  done;
  normalize v

let pp fmt v = Format.fprintf fmt "%d'h%s" v.width (to_hex_string v)
let hash v = Hashtbl.hash v

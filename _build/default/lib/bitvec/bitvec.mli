(** Fixed-width bitvectors.

    A value of type [t] is an immutable bitvector of a given positive width.
    All arithmetic is modular (two's complement). Operands of binary
    operations must have equal widths; violating this raises
    [Invalid_argument].

    This module is the single value domain shared by the RTL simulator
    ({!Sim}), the bit-blaster ({!Cnf}) and counterexample traces ({!Bmc}). *)

type t

(** {1 Construction} *)

val zero : int -> t
(** [zero w] is the all-zeros vector of width [w]. Raises if [w < 1]. *)

val ones : int -> t
(** [ones w] is the all-ones vector of width [w]. *)

val one : int -> t
(** [one w] is the vector of width [w] with value 1. *)

val of_int : width:int -> int -> t
(** [of_int ~width n] truncates the two's-complement representation of [n]
    to [width] bits. Negative [n] yields the expected two's-complement
    pattern. *)

val of_bool : bool -> t
(** [of_bool b] is a 1-bit vector. *)

val of_bits : bool array -> t
(** [of_bits a] builds a vector from [a], least-significant bit first.
    Raises if [a] is empty. *)

val of_binary_string : string -> t
(** [of_binary_string "1010"] parses a big-endian binary literal (the
    leftmost character is the most significant bit). Underscores are
    ignored. Raises on empty or malformed input. *)

val of_hex_string : width:int -> string -> t
(** [of_hex_string ~width s] parses a hexadecimal literal, truncating or
    zero-extending to [width]. Underscores are ignored. *)

(** {1 Observation} *)

val width : t -> int

val bit : t -> int -> bool
(** [bit v i] is the [i]th bit, 0 being least significant. Raises if out of
    range. *)

val to_int : t -> int
(** [to_int v] is the unsigned value of [v]. Raises [Invalid_argument] if it
    does not fit in a non-negative OCaml [int] (i.e. width > 62 with high
    bits set). *)

val to_signed_int : t -> int
(** Two's-complement signed value; same overflow caveat as {!to_int}. *)

val to_bits : t -> bool array
(** Least-significant bit first. *)

val to_binary_string : t -> string
val to_hex_string : t -> string

val is_zero : t -> bool
val is_ones : t -> bool

val reduce_or : t -> bool
val reduce_and : t -> bool
val reduce_xor : t -> bool

(** {1 Bitwise operations} *)

val lognot : t -> t
val logand : t -> t -> t
val logor : t -> t -> t
val logxor : t -> t -> t

(** {1 Arithmetic} *)

val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val mul : t -> t -> t
(** Modular multiplication at the common width. *)

(** {1 Comparisons} *)

val equal : t -> t -> bool
(** Value equality; requires equal widths. *)

val compare : t -> t -> int
(** Unsigned comparison; requires equal widths. Total order. *)

val ult : t -> t -> bool
val ule : t -> t -> bool
val slt : t -> t -> bool
(** Signed (two's-complement) less-than. *)

val sle : t -> t -> bool

(** {1 Shifts} *)

val shift_left : t -> int -> t
val shift_right_logical : t -> int -> t
val shift_right_arith : t -> int -> t

(** {1 Structure} *)

val extract : hi:int -> lo:int -> t -> t
(** [extract ~hi ~lo v] is bits [lo..hi] inclusive; width [hi - lo + 1].
    Raises if the range is invalid. *)

val concat : t -> t -> t
(** [concat hi lo] places [hi] in the most-significant position. *)

val concat_list : t list -> t
(** [concat_list [msb; ...; lsb]]; raises on empty list. *)

val zero_extend : t -> int -> t
(** [zero_extend v w] extends (or returns [v] when [w = width v]) to width
    [w]. Raises if [w < width v]. *)

val sign_extend : t -> int -> t

val repeat : t -> int -> t
(** [repeat v n] concatenates [n] copies of [v]. Raises if [n < 1]. *)

(** {1 Miscellaneous} *)

val random : Random.State.t -> int -> t
(** [random st w] draws a uniformly random vector of width [w]. *)

val pp : Format.formatter -> t -> unit
(** Prints as [w'hHEX]. *)

val hash : t -> int

module Signal = Rtl.Signal
module Circuit = Rtl.Circuit
open Signal

(* Instruction encoding, 8 bits: op[7:6] f1[5:4] f2[3:2] f3[1:0].
     op=00, f1=00          NOP
     op=00, f1=01          BR    pc <- pc_ex + {f2,f3}
     op=00, f1=10          IRQEN irq_en <- f3[0]
     op=01                 ALU   rf[f1] <- rf[f2] + rf[f3]
     op=10                 JMP   pc <- rf[f1]
     op=11, f1=00          LOAD  rf[f2] <- dmem_rdata; dmem_addr = rf[f3]
     op=11, f1=01          STORE dmem_addr = rf[f2]; dmem_wdata = rf[f3]
     op=11, f1=10          CSRJMP pc <- csr[f2&1]
     op=11, f1=11          CSRW  csr[f2&1] <- rf[f3] *)

let instruction i =
  let enc op f1 f2 f3 = (op lsl 6) lor (f1 lsl 4) lor (f2 lsl 2) lor f3 in
  match i with
  | `Nop -> enc 0 0 0 0
  | `Br imm -> enc 0 1 (imm lsr 2 land 3) (imm land 3)
  | `Irqen v -> enc 0 2 0 (if v then 1 else 0)
  | `Alu (rd, rs1, rs2) -> enc 1 rd rs1 rs2
  | `Jmp rs1 -> enc 2 rs1 0 0
  | `Load (rd, rs1) -> enc 3 0 rd rs1
  | `Store (rs1, rs2) -> enc 3 1 rs1 rs2
  | `Csrjmp c -> enc 3 2 (c land 1) 0
  | `Csrw (c, rs1) -> enc 3 3 (c land 1) rs1

let xlen = 8

let create () =
  (* {2 Interface} *)
  let imem_instr = input "imem_instr" 8 in
  let dmem_rdata = input "dmem_rdata" xlen in
  let irq = input "irq" 1 in

  (* {2 State} *)
  let pc = reg "pc" xlen in
  let pc_ex = reg "pc_ex" xlen in
  let instr_ex = reg "instr_ex" 8 in
  let valid_ex = reg "valid_ex" 1 in
  let irq_pending = reg "irq_pending" 1 in
  let irq_en = reg "irq_en" 1 in
  let regfile = Rtl.Mem.create ~name:"regfile" ~size:4 ~width:xlen () in
  let csr = Rtl.Mem.create ~name:"csr" ~size:2 ~width:xlen () in

  (* {2 Decode of the EX-stage instruction} *)
  let op = select instr_ex 7 6 in
  let f1 = select instr_ex 5 4 in
  let f2 = select instr_ex 3 2 in
  let f3 = select instr_ex 1 0 in
  let is_br = valid_ex &: (op ==: zero 2) &: (f1 ==: one 2) in
  let is_irqen = valid_ex &: (op ==: zero 2) &: (f1 ==: of_int ~width:2 2) in
  let is_alu = valid_ex &: (op ==: one 2) in
  let is_jmp = valid_ex &: (op ==: of_int ~width:2 2) in
  let sys = op ==: of_int ~width:2 3 in
  let is_load = valid_ex &: sys &: (f1 ==: zero 2) in
  let is_store = valid_ex &: sys &: (f1 ==: one 2) in
  let is_csrjmp = valid_ex &: sys &: (f1 ==: of_int ~width:2 2) in
  let is_csrw = valid_ex &: sys &: (f1 ==: of_int ~width:2 3) in

  (* A pending interrupt traps as soon as interrupts are enabled; a
     pending bit left by the victim is the hidden state behind V5. *)
  let trap = irq_pending &: irq_en in
  let exec = ~:trap in

  (* {2 Register-file reads} *)
  let rf_f1 = Rtl.Mem.read regfile f1 in
  let rf_f2 = Rtl.Mem.read regfile f2 in
  let rf_f3 = Rtl.Mem.read regfile f3 in

  (* {2 CSR block (blackboxable boundary)} *)
  let csr_raddr = bit f2 0 in
  let csr_rdata = Rtl.Mem.read csr csr_raddr in
  let csr_wen = exec &: is_csrw in
  let csr_waddr = bit f2 0 in
  let csr_wdata = rf_f3 in
  Rtl.Mem.write csr ~enable:csr_wen ~addr:csr_waddr ~data:csr_wdata;
  Rtl.Mem.finalize csr;

  (* {2 Next PC} *)
  let br_target = pc_ex +: uresize (concat [ f2; f3 ]) xlen in
  let taken = exec &: (is_jmp |: is_br |: is_csrjmp) in
  let target =
    onehot_mux
      [ (is_jmp, rf_f1); (is_br, br_target); (is_csrjmp, csr_rdata) ]
      ~default:(zero xlen)
  in
  let trap_vector = of_int ~width:xlen 0xF0 in
  let pc_next = mux2 trap trap_vector (mux2 taken target (pc +: one xlen)) in
  reg_set_next pc pc_next;

  (* {2 Pipeline registers} — squash the wrong-path fetch after a taken
     jump or a trap. *)
  reg_set_next pc_ex pc;
  reg_set_next instr_ex imem_instr;
  reg_set_next valid_ex ~:(taken |: trap);

  (* {2 Register-file writes} *)
  let rf_wen = exec &: (is_alu |: is_load) in
  let rf_waddr = mux2 is_alu f1 f2 in
  let rf_wdata = mux2 is_alu (rf_f2 +: rf_f3) dmem_rdata in
  Rtl.Mem.write regfile ~enable:rf_wen ~addr:rf_waddr ~data:rf_wdata;
  Rtl.Mem.finalize regfile;

  (* {2 Interrupts} — pending is sticky until the trap is taken; the
     enable bit is program-controlled. *)
  reg_set_next irq_pending ((irq_pending |: irq) &: ~:trap);
  reg_set_next irq_en (mux2 (exec &: is_irqen) (bit f3 0) irq_en);

  (* {2 Memory interface} — the bus idles at zero outside memory
     operations so the register file is only exposed by explicit
     loads/stores. *)
  let mem_op = exec &: (is_load |: is_store) in
  let dmem_addr = mux2 mem_op (mux2 is_store rf_f2 rf_f3) (zero xlen) in
  let dmem_wdata = mux2 (exec &: is_store) rf_f3 (zero xlen) in
  let dmem_hwrite = exec &: is_store in

  Circuit.create ~name:"vscale"
    ~boundaries:
      [
        {
          Circuit.bnd_name = "csr";
          bnd_outputs = [ ("rdata", csr_rdata) ];
          bnd_inputs =
            [ ("wen", csr_wen); ("waddr", uresize csr_waddr 1); ("wdata", csr_wdata) ];
        };
      ]
    ~outputs:
      [
        ("imem_addr", pc);
        ("dmem_addr", dmem_addr);
        ("dmem_wdata", dmem_wdata);
        ("dmem_hwrite", dmem_hwrite);
      ]
    ()

type refinement_stage =
  | Default
  | Arch_regfile
  | Blackbox_csr
  | Arch_pc
  | Arch_pipeline
  | Arch_irq

let stages = [ Default; Arch_regfile; Blackbox_csr; Arch_pc; Arch_pipeline; Arch_irq ]

let stage_name = function
  | Default -> "default FT"
  | Arch_regfile -> "+ regfile in arch state (V1)"
  | Blackbox_csr -> "+ CSR blackboxed (V2)"
  | Arch_pc -> "+ EX-stage PC in arch state (V3)"
  | Arch_pipeline -> "+ pipeline registers in arch state (V4)"
  | Arch_irq -> "+ interrupt pending/enable in arch state (V5)"

let stage_index = function
  | Default -> 0
  | Arch_regfile -> 1
  | Blackbox_csr -> 2
  | Arch_pc -> 3
  | Arch_pipeline -> 4
  | Arch_irq -> 5

let regfile_names = List.init 4 (fun i -> Printf.sprintf "regfile_%d" i)

let ft_for_stage ?(threshold = 2) stage dut =
  let n = stage_index stage in
  let arch_regs =
    (if n >= 1 then regfile_names else [])
    @ (if n >= 3 then [ "pc_ex" ] else [])
    @ (if n >= 4 then [ "instr_ex"; "valid_ex" ] else [])
    @ if n >= 5 then [ "irq_pending"; "irq_en" ] else []
  in
  let blackbox = if n >= 2 then [ "csr" ] else [] in
  Autocc.Ft.generate ~threshold ~arch_regs ~blackbox dut

(** A downsized CVA6-like frontend and memory subsystem (Sec. 4.2).

    The model contains the microarchitectural structures involved in the
    paper's CVA6 counterexamples, sized down exactly as the paper sizes
    down caches and TLBs:

    - a fetch frontend with a 2-line instruction cache, an AXI-like
      refill port, a 2-entry branch-target buffer trained by resolved
      branches, and the instruction realigner;
    - a load unit with a 1-entry TLB, a page-table walker FSM
      (IDLE / PTE_LOOKUP / WAIT_RVALID), and a 2-line data cache whose
      refills (including PTE fetches) go through a shared memory port;
    - a [fence.t] controller with three implementations of increasing
      exhaustiveness, mirroring the three CVA6 adaptations the paper
      evaluates: [Plain_fence] (synchronize only, flush nothing),
      [Full_flush] (clear the cache/TLB/predictor valid bits, no drain)
      and [Microreset] (drain, write back, clear).

    The three injected defects mirror C1–C3 of Table 1; each has an RTL
    fix flag:

    - C1 ([fix_c1]): the I-cache returns the (stale) line data even when
      the response is only valid because of a fetch exception, and the
      realigner derives its valid bit from that garbage payload;
    - C2 ([fix_c2]): the PTW leaves WAIT_RVALID when the flush signal is
      asserted a second time (e.g. by an exception), orphaning the
      outstanding memory response;
    - C3 ([fix_c3]): the fence does not block new load-unit operations
      during its write-back window and does not drain outstanding D-cache
      fills, so a fill initiated before the flush lands after it.

    Interface:
    - inputs  [fetch_ex], [axi_rvalid], [axi_rdata], [lsu_req],
      [lsu_vaddr], [dmem_rvalid], [dmem_rdata], [fence_req], [exc],
      [br_resolve], [br_taken], [br_pc], [br_target];
    - outputs [fetch_addr], [axi_req_valid]/[axi_req_addr] (tx),
      [dmem_req_valid]/[dmem_req_addr] (tx), [lsu_rvalid]/[lsu_rdata]
      (tx), [fence_busy]. *)

type mode = Plain_fence | Full_flush | Microreset

type config = { mode : mode; fix_c1 : bool; fix_c2 : bool; fix_c3 : bool }

val plain_fence : config
(** The paper's baseline: fence.t synchronizes but flushes nothing — the
    caches, TLB and branch predictor all remain covert channels. *)

val full_flush : config
(** Full flush, all logic fixes applied — still leaks through undrained
    in-flight state, as the paper's validation of prior findings shows. *)

val microreset_buggy : config
(** Microreset with C1, C2 and C3 present. *)

val microreset_fixed : config
(** Microreset with all three fixes — the configuration expected to reach
    a bounded proof. *)

val with_fixes : ?fix_c1:bool -> ?fix_c2:bool -> ?fix_c3:bool -> mode -> config

type params = { icache_lines : int; dcache_lines : int; btb_entries : int }
(** Structure sizes (powers of two). The defaults (2/2/2) keep FPV
    runtimes in seconds; the scaling benchmark sweeps them to reproduce
    the exponential-state-growth discussion of Secs. 1 and 3.4. *)

val default_params : params

val create : ?config:config -> ?params:params -> unit -> Rtl.Circuit.t

val flush_done :
  unit -> Rtl.Circuit.t -> Autocc.Ft.mapping -> Autocc.Ft.mapping -> Rtl.Signal.t
(** The fence completes (reaches its CLEAR state) in both universes on the
    same cycle. *)

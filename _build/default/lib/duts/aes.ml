module Signal = Rtl.Signal
module Circuit = Rtl.Circuit
open Signal

let default_stages = 8
let w = 8

let rotl1 s = concat [ select s (w - 2) 0; bit s (w - 1) ]

(* One pipeline round: mix the data with the key and diffuse. *)
let round data key = rotl1 (data ^: key)
let round_key key = rotl1 key ^: of_int ~width:w 0x1B

let encrypt ~pt ~key =
  let rotl1_i x = ((x lsl 1) land 0xFF) lor (x lsr 7) in
  let rec go data key n =
    if n = 0 then data
    else go (rotl1_i (data lxor key)) (rotl1_i key lxor 0x1B) (n - 1)
  in
  go pt key default_stages

let stage_names stages =
  List.init stages (fun i -> Printf.sprintf "stage%d_valid" i)

let create ?(stages = default_stages) () =
  let req_valid = input "req_valid" 1 in
  let req_pt = input "req_pt" w in
  let req_key = input "req_key" w in
  let valids = List.map (fun n -> reg n 1) (stage_names stages) in
  let datas = List.init stages (fun i -> reg (Printf.sprintf "stage%d_data" i) w) in
  let keys = List.init stages (fun i -> reg (Printf.sprintf "stage%d_key" i) w) in
  let rec connect prev_v prev_d prev_k vs ds ks =
    match (vs, ds, ks) with
    | [], [], [] -> (prev_v, prev_d)
    | v :: vs, d :: ds, k :: ks ->
        reg_set_next v prev_v;
        reg_set_next d (round prev_d prev_k);
        reg_set_next k (round_key prev_k);
        connect v d k vs ds ks
    | _ -> assert false
  in
  let resp_valid, resp_ct = connect req_valid req_pt req_key valids datas keys in
  Circuit.create ~name:"aes"
    ~in_tx:[ { Circuit.tx_name = "req"; valid = "req_valid"; payloads = [ "req_pt"; "req_key" ] } ]
    ~out_tx:[ { Circuit.tx_name = "resp"; valid = "resp_valid"; payloads = [ "resp_ct" ] } ]
    ~outputs:[ ("resp_valid", resp_valid); ("resp_ct", resp_ct) ]
    ()

let flush_done_idle ?(stages = default_stages) () dut map_a map_b =
  let idle m =
    List.fold_left
      (fun acc n -> acc &: ~:(m (Circuit.find_reg dut n)))
      vdd (stage_names stages)
  in
  idle map_a &: idle map_b

(** A downsized Vscale-like RISC-V core (Sec. 4.1 of the paper).

    Two-stage in-order pipeline (fetch, execute/write-back) with a
    register file, a CSR block declared as a blackboxable boundary, a
    jump-to-register instruction, a PC-relative branch, data-memory
    load/store, and an interrupt-pending stall — the structural features
    behind counterexamples V1–V5 of Table 2:

    - V1: jump/store exposes the register file on the memory interface;
    - V2: jump to an address read from the CSR block;
    - V3: the EX-stage PC copy steers a PC-relative branch;
    - V4: the EX-stage instruction register drives all control;
    - V5: a pending interrupt from the victim stalls the spy's fetch.

    Datapath width and register count are parameters; the defaults (8-bit,
    4 registers) keep FPV runtimes in seconds, the same downsizing the
    paper applies to caches and TLBs.

    Interface:
    - inputs  [imem_instr] (instruction at the current PC), [dmem_rdata],
      [irq];
    - outputs [imem_addr], [dmem_addr], [dmem_wdata], [dmem_hwrite]. *)

type refinement_stage =
  | Default  (** the FT exactly as generated, no architectural state *)
  | Arch_regfile  (** + register file in [architectural_state_eq] (V1) *)
  | Blackbox_csr  (** + CSR block blackboxed (V2) *)
  | Arch_pc  (** + EX-stage PC (V3) *)
  | Arch_pipeline  (** + EX-stage instruction/valid registers (V4) *)
  | Arch_irq  (** + interrupt-pending flag (V5): expect a proof *)

val stages : refinement_stage list
(** All stages, in the order of Table 2's refinement walk. *)

val stage_name : refinement_stage -> string

val create : unit -> Rtl.Circuit.t
(** Build the core. *)

val ft_for_stage : ?threshold:int -> refinement_stage -> Rtl.Circuit.t -> Autocc.Ft.t
(** The FT with the refinements accumulated up to (and including) the
    given stage. *)

val instruction :
  [ `Nop
  | `Br of int  (** pc-relative branch, 4-bit immediate *)
  | `Irqen of bool  (** write the interrupt-enable flag *)
  | `Alu of int * int * int  (** rd, rs1, rs2 *)
  | `Jmp of int  (** rs1 *)
  | `Load of int * int  (** rd, rs1 *)
  | `Store of int * int  (** rs1, rs2 *)
  | `Csrjmp of int  (** csr index *)
  | `Csrw of int * int  (** csr index, rs1 *) ] ->
  int
(** Encode an instruction word — used by tests and the walkthrough
    example to drive the core in simulation. *)

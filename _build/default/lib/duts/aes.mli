(** A pipelined AES-like encryption accelerator (Sec. 4.4 of the paper).

    A request (plaintext + key) enters a deep pipeline; [stages] cycles
    later the ciphertext emerges with a valid flag. The accelerator has no
    flush or invalidate mechanism at all — it was designed under the
    assumption that a process releases it only after all outstanding
    requests have completed.

    Counterexample A1: requests still in the pipeline when the context
    switch happens produce responses during the spy's time slice in one
    universe only — an observable timing difference.

    The paper's refinement models the well-behaved OS: define flush
    completion as "no ongoing requests in either universe"
    ({!flush_done_idle}); with it, the FPV run reaches a full proof. The
    round function is a lightweight xor/rotate permutation standing in
    for the AES rounds — the security argument is about the pipeline
    occupancy, not the cipher.

    Interface: inputs [req_valid], [req_pt], [req_key]; outputs
    [resp_valid], [resp_ct] (transaction). *)

val default_stages : int

val create : ?stages:int -> unit -> Rtl.Circuit.t

val flush_done_idle :
  ?stages:int ->
  unit ->
  Rtl.Circuit.t ->
  Autocc.Ft.mapping ->
  Autocc.Ft.mapping ->
  Rtl.Signal.t
(** No valid request in any pipeline stage, in both universes. *)

val encrypt : pt:int -> key:int -> int
(** Reference model of the pipeline's permutation, for simulation
    tests. *)

(** A sequential division unit with data-dependent latency — the Sec. 5
    discussion case.

    The unit divides by repeated subtraction: a division takes
    [quotient + 1] cycles, so its timing is a function of the operands.
    Shared across a context switch it is a covert channel; the paper's
    discussion offers three postures, all reproducible here:

    - find the channel (default FT — an in-flight division leaks);
    - close it in hardware: the OS allocates the unit only when idle
      ({!flush_done_idle}), and optionally the [constant_latency] variant
      pads every division to the worst case;
    - close it in software: constant-time programming never divides
      secret data, modeled by the {!constant_time_software} environment
      assumption (divisions in the two universes always carry equal
      operands — Sec. 2.1's "constrain the FPV environment to executions
      allowed under constant-time programming").

    Interface: inputs [start], [dividend], [divisor]; outputs
    [busy], [done_valid]/[quotient]/[remainder] (transaction). A zero
    divisor completes immediately with an all-ones quotient. *)

val width : int

val create : ?constant_latency:bool -> unit -> Rtl.Circuit.t

val flush_done_idle :
  unit -> Rtl.Circuit.t -> Autocc.Ft.mapping -> Autocc.Ft.mapping -> Rtl.Signal.t
(** The unit is idle in both universes. *)

val constant_time_software :
  Rtl.Circuit.t -> Autocc.Ft.mapping -> Autocc.Ft.mapping -> Rtl.Signal.t list
(** Environment assumptions restricting the explored executions to
    constant-time software: both universes start the same divisions with
    the same operands, in the victim phase too. *)

val reference : dividend:int -> divisor:int -> int * int
(** Quotient and remainder of the model (divisor 0 gives all-ones / the
    dividend). *)

lib/duts/maple.mli: Autocc Rtl

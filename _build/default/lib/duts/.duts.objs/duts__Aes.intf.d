lib/duts/aes.mli: Autocc Rtl

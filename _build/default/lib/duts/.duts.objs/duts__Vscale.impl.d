lib/duts/vscale.ml: Autocc List Printf Rtl

lib/duts/divider.mli: Autocc Rtl

lib/duts/maple.ml: Bitvec Printf Rtl

lib/duts/aes.ml: List Printf Rtl

lib/duts/cva6lite.ml: Array Printf Rtl

lib/duts/cva6lite.mli: Autocc Rtl

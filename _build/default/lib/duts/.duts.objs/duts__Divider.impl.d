lib/duts/divider.ml: Rtl

lib/duts/vscale.mli: Autocc Rtl

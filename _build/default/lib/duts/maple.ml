module Signal = Rtl.Signal
module Circuit = Rtl.Circuit
open Signal

type config = { fix_m2 : bool; fix_m3 : bool }

let vulnerable = { fix_m2 = false; fix_m3 = false }
let fixed = { fix_m2 = true; fix_m3 = true }
let cfg_base = 0
let cfg_tlb_en = 1
let cfg_cleanup = 2
let mapped_limit = 0xC0
let aw = 8 (* address/data width *)

type fifo2 = {
  v0 : Signal.t;
  d0 : Signal.t;
  v1 : Signal.t;
  d1 : Signal.t;
}

(* Two-entry FIFO with synchronous clear; entry 0 is the head. Push when
   full is dropped. *)
let fifo2 ~name ~width ~push ~push_data ~pop ~clear =
  let v0 = reg (name ^ "_v0") 1 and d0 = reg (name ^ "_d0") width in
  let v1 = reg (name ^ "_v1") 1 and d1 = reg (name ^ "_d1") width in
  let pop = pop &: v0 in
  let after_pop_v0 = mux2 pop v1 v0 in
  let after_pop_d0 = mux2 pop d1 d0 in
  let after_pop_v1 = mux2 pop gnd v1 in
  let push_into0 = push &: ~:after_pop_v0 in
  let push_into1 = push &: after_pop_v0 &: ~:after_pop_v1 in
  reg_set_next v0 (mux2 clear gnd (after_pop_v0 |: push_into0));
  reg_set_next d0 (mux2 push_into0 push_data after_pop_d0);
  reg_set_next v1 (mux2 clear gnd (after_pop_v1 |: push_into1));
  reg_set_next d1 (mux2 push_into1 push_data d1);
  { v0; d0; v1; d1 }

let create ?(config = vulnerable) ?(pad_flush = false) () =
  (* {2 Interface} *)
  let cfg_wen = input "cfg_wen" 1 in
  let cfg_addr = input "cfg_addr" 2 in
  let cfg_wdata = input "cfg_wdata" aw in
  let req_valid = input "req_valid" 1 in
  let req_idx = input "req_idx" 4 in
  let noc_req_ready = input "noc_req_ready" 1 in
  let noc_resp_valid = input "noc_resp_valid" 1 in
  let noc_resp_data = input "noc_resp_data" aw in
  let consume = input "consume" 1 in

  (* {2 Configuration registers} *)
  let base = reg "base" aw in
  let tlb_en = reg ~init:(Bitvec.one 1) "tlb_en" 1 in

  (* {2 Invalidation FSM} — a countdown triggered by the cleanup
     configuration write; queue entries are cleared while it runs. The
     next-state function is closed further down, once the queue exists:
     the realistic latency depends on how much state there is to
     invalidate, and [pad_flush] loads the worst case instead, making the
     latency independent of prior execution (the microreset padding of
     Secs. 3.2 and 4.2). *)
  let inval_cnt = reg "inval_cnt" 2 in
  let cleanup_fire = cfg_wen &: (cfg_addr ==: of_int ~width:2 cfg_cleanup) in
  let invalidating = inval_cnt >: zero 2 in
  let inval_idle = ~:invalidating -- "inval_idle" in

  (* Configuration writes. The vulnerable design omits [base] and
     [tlb_en] from the invalidation; the upstream fixes reset them during
     cleanup. *)
  let write_to a = cfg_wen &: (cfg_addr ==: of_int ~width:2 a) in
  let base_next = mux2 (write_to cfg_base) cfg_wdata base in
  let base_next =
    if config.fix_m3 then mux2 invalidating (zero aw) base_next else base_next
  in
  reg_set_next base base_next;
  let tlb_en_next = mux2 (write_to cfg_tlb_en) (bit cfg_wdata 0) tlb_en in
  let tlb_en_next =
    if config.fix_m2 then mux2 invalidating vdd tlb_en_next else tlb_en_next
  in
  reg_set_next tlb_en tlb_en_next;

  (* {2 Address generation and TLB check} *)
  let vaddr = base +: uresize req_idx aw in
  let mapped = vaddr <: of_int ~width:aw mapped_limit in
  let req_fire = req_valid &: ~:invalidating in
  let fault = (req_fire &: tlb_en &: ~:mapped) -- "fault" in
  let issue = req_fire &: ~:fault in

  (* {2 NoC output buffer (two entries)} — requests wait here until the
     NoC accepts them; M1 is this buffer holding different depths across
     the context switch. It is intentionally not cleared: the requests
     are already committed to the NoC protocol. *)
  let outbuf =
    fifo2 ~name:"outbuf" ~width:aw ~push:issue ~push_data:vaddr
      ~pop:noc_req_ready ~clear:gnd
  in

  (* {2 Return queue (two entries, cleared by the invalidation)} *)
  let push = noc_resp_valid &: ~:invalidating in
  let queue =
    fifo2 ~name:"q" ~width:aw ~push ~push_data:noc_resp_data ~pop:consume
      ~clear:invalidating
  in
  let inval_load =
    if pad_flush then of_int ~width:2 3
    else one 2 +: uresize queue.v0 2 +: uresize queue.v1 2
  in
  reg_set_next inval_cnt
    (mux2 cleanup_fire inval_load
       (mux2 invalidating (inval_cnt -: one 2) inval_cnt));

  Circuit.create ~name:"maple"
    ~in_tx:
      [
        { Circuit.tx_name = "cfg"; valid = "cfg_wen"; payloads = [ "cfg_addr"; "cfg_wdata" ] };
        { Circuit.tx_name = "req"; valid = "req_valid"; payloads = [ "req_idx" ] };
        { Circuit.tx_name = "noc_resp"; valid = "noc_resp_valid"; payloads = [ "noc_resp_data" ] };
      ]
    ~out_tx:
      [
        { Circuit.tx_name = "noc_req"; valid = "noc_req_valid"; payloads = [ "noc_req_addr" ] };
        { Circuit.tx_name = "resp"; valid = "resp_valid"; payloads = [ "resp_data" ] };
      ]
    ~outputs:
      [
        ("noc_req_valid", outbuf.v0);
        ("noc_req_addr", outbuf.d0);
        ("resp_valid", queue.v0);
        ("resp_data", queue.d0);
        ("fault", fault);
        ("inval_idle", inval_idle);
      ]
    ()

let edge_of ~rising gensym_prefix m idle =
  let inv = Signal.( ~: ) (m idle) in
  let prev = reg (gensym_prefix ()) 1 in
  reg_set_next prev inv;
  if rising then Signal.( &: ) inv (Signal.( ~: ) prev)
  else Signal.( &: ) prev (Signal.( ~: ) inv)

let gensym =
  let n = ref 0 in
  fun prefix ->
    incr n;
    Printf.sprintf "%s_%d" prefix !n

(* The paper sets flush_done to the cycle on which the invalidation state
   transitions to idle — a falling edge of [invalidating], detected with a
   one-cycle history register in the monitor logic. Completion must
   coincide in the two universes (Fig. 3: flushes may start apart but
   finish together). *)
let outbuf_empty dut m =
  let v0 = Circuit.find_reg dut "outbuf_v0" in
  let v1 = Circuit.find_reg dut "outbuf_v1" in
  ~:(m v0) &: ~:(m v1)

let flush_cond ~rising ?(require_outbuf_empty = false) () dut map_a map_b =
  let idle = Circuit.find_output dut "inval_idle" in
  let gp () = gensym "autocc.prev_invalidating" in
  let cond =
    edge_of ~rising gp map_a idle &: edge_of ~rising gp map_b idle
  in
  if require_outbuf_empty then
    cond &: outbuf_empty dut map_a &: outbuf_empty dut map_b
  else cond

let flush_done ?require_outbuf_empty () dut map_a map_b =
  flush_cond ~rising:false ?require_outbuf_empty () dut map_a map_b

let flush_start ?require_outbuf_empty () dut map_a map_b =
  flush_cond ~rising:true ?require_outbuf_empty () dut map_a map_b

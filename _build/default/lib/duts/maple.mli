(** A downsized MAPLE memory-access engine (Sec. 4.3 of the paper).

    MAPLE offloads memory fetches: software configures an array base
    address, then issues asynchronous loads by index; data returns through
    a hardware queue. A cleanup (invalidation) operation runs between
    processes and is supposed to flush the microarchitectural state.

    The model contains the exact structural features behind the paper's
    counterexamples:

    - M1: a NoC output buffer that can still hold a request when the
      invalidation completes;
    - M2: a TLB-enable flip-flop (set at reset, clearable through the
      configuration interface) that cleanup fails to reset — a binary
      covert channel observed through page faults;
    - M3: the array base-address register that cleanup fails to clear —
      the byte-wide covert channel exploited in Listing 2.

    [fix_m2]/[fix_m3] correspond to the upstream RTL fixes; both default
    to false (the vulnerable design).

    Interface:
    - inputs  [cfg_wen], [cfg_addr] (0 = base, 1 = tlb enable, 2 =
      cleanup), [cfg_wdata]; [req_valid], [req_idx]; [noc_req_ready];
      [noc_resp_valid], [noc_resp_data]; [consume];
    - outputs [noc_req_valid], [noc_req_addr] (transaction);
      [resp_valid], [resp_data] (transaction); [fault]; [inval_idle]. *)

type config = { fix_m2 : bool; fix_m3 : bool }

val vulnerable : config
val fixed : config

val create : ?config:config -> ?pad_flush:bool -> unit -> Rtl.Circuit.t
(** [pad_flush] (default false) pads the invalidation to its worst-case
    latency; without it, the latency grows with the number of occupied
    queue entries, which is itself a covert channel when the flush event
    is observable (Sec. 3.2). *)

val flush_done :
  ?require_outbuf_empty:bool ->
  unit ->
  Rtl.Circuit.t ->
  Autocc.Ft.mapping ->
  Autocc.Ft.mapping ->
  Rtl.Signal.t
(** Flush completion (falling edge of the invalidation) in both
    universes. With [require_outbuf_empty] (the refinement that retires
    M1), the NoC output buffer must also be empty in both universes. *)

val flush_start :
  ?require_outbuf_empty:bool ->
  unit ->
  Rtl.Circuit.t ->
  Autocc.Ft.mapping ->
  Autocc.Ft.mapping ->
  Rtl.Signal.t
(** Flush start (rising edge of the invalidation) in both universes, for
    use with {!Autocc.Ft.generate}'s [~sync:Flush_start] mode. *)

(** Configuration-register addresses of the software API. *)

val cfg_base : int
val cfg_tlb_en : int
val cfg_cleanup : int

val mapped_limit : int
(** Addresses >= this value page-fault when the TLB is enabled. *)

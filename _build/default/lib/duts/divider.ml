module Signal = Rtl.Signal
module Circuit = Rtl.Circuit
open Signal

let width = 4

let reference ~dividend ~divisor =
  if divisor = 0 then (((1 lsl width) - 1), dividend)
  else (dividend / divisor, dividend mod divisor)

let create ?(constant_latency = false) () =
  let start = input "start" 1 in
  let dividend = input "dividend" width in
  let divisor = input "divisor" width in

  let busy = reg "busy" 1 in
  let acc = reg "acc" width in
  let quotient = reg "quotient" width in
  let divisor_r = reg "divisor_r" width in
  let done_valid = reg "done_valid" 1 in
  (* The padding counter for the constant-latency variant: a division
     retires only when it has also burned the worst-case cycle count. *)
  let pad = reg "pad" width in

  let accept = start &: ~:busy in
  let div_zero = divisor_r ==: zero width in
  let can_sub = (acc >=: divisor_r) &: ~:div_zero in
  let value_done = div_zero |: ~:can_sub in
  let pad_done =
    if constant_latency then pad ==: ones width else vdd
  in
  let finish = busy &: value_done &: pad_done in

  reg_set_next busy (mux2 accept vdd (mux2 finish gnd busy));
  reg_set_next acc (mux2 accept dividend (mux2 (busy &: can_sub) (acc -: divisor_r) acc));
  reg_set_next quotient
    (mux2 accept (zero width)
       (mux2
          (busy &: can_sub)
          (quotient +: one width)
          (mux2 (busy &: div_zero) (ones width) quotient)));
  reg_set_next divisor_r (mux2 accept divisor divisor_r);
  reg_set_next pad (mux2 accept (zero width) (mux2 busy (pad +: one width) pad));
  reg_set_next done_valid finish;

  Circuit.create ~name:(if constant_latency then "divider_cl" else "divider")
    ~in_tx:
      [ { Circuit.tx_name = "op"; valid = "start"; payloads = [ "dividend"; "divisor" ] } ]
    ~out_tx:
      [
        {
          Circuit.tx_name = "result";
          valid = "done_valid";
          payloads = [ "quotient"; "remainder" ];
        };
      ]
    ~outputs:
      [
        ("busy", busy);
        ("done_valid", done_valid);
        ("quotient", mux2 done_valid quotient (zero width));
        ("remainder", mux2 done_valid acc (zero width));
      ]
    ()

let flush_done_idle () dut map_a map_b =
  let busy = Circuit.find_reg dut "busy" in
  ~:(map_a busy) &: ~:(map_b busy)

let constant_time_software dut map_a map_b =
  let i n = Circuit.find_input dut n in
  let eq s = map_a s ==: map_b s in
  (* Divisions are only performed on public (universe-equal) data, and at
     the same program points. *)
  [
    eq (i "start");
    ~:(map_a (i "start")) |: (eq (i "dividend") &: eq (i "divisor"));
  ]

module Signal = Rtl.Signal
module Circuit = Rtl.Circuit
open Signal

type mode = Plain_fence | Full_flush | Microreset

type config = { mode : mode; fix_c1 : bool; fix_c2 : bool; fix_c3 : bool }

let plain_fence = { mode = Plain_fence; fix_c1 = true; fix_c2 = true; fix_c3 = true }
let full_flush = { mode = Full_flush; fix_c1 = true; fix_c2 = true; fix_c3 = true }
let microreset_buggy = { mode = Microreset; fix_c1 = false; fix_c2 = false; fix_c3 = false }
let microreset_fixed = { mode = Microreset; fix_c1 = true; fix_c2 = true; fix_c3 = true }

let with_fixes ?(fix_c1 = true) ?(fix_c2 = true) ?(fix_c3 = true) mode =
  { mode; fix_c1; fix_c2; fix_c3 }

type params = { icache_lines : int; dcache_lines : int; btb_entries : int }

let default_params = { icache_lines = 2; dcache_lines = 2; btb_entries = 2 }

let clog2 n =
  let rec go acc v = if v >= n then acc else go (acc + 1) (2 * v) in
  go 0 1

let aw = 6 (* physical/fetch address width *)
let vw = 4 (* virtual address width on the load side *)
let dw = 8 (* data width *)

(* Load-unit FSM states. *)
let l_idle = 0
let l_pwalk_req = 1
let l_pwalk_wait = 2
let l_dc = 3
let l_fill = 4
let l_resp = 5

(* Fence FSM states. *)
let f_idle = 0
let f_drain = 1
let f_wb = 2
let f_clear = 3

let create ?(config = microreset_buggy) ?(params = default_params) () =
  (* {2 Interface} *)
  let fetch_ex = input "fetch_ex" 1 in
  let axi_rvalid = input "axi_rvalid" 1 in
  let axi_rdata = input "axi_rdata" dw in
  let lsu_req = input "lsu_req" 1 in
  let lsu_vaddr = input "lsu_vaddr" vw in
  let dmem_rvalid = input "dmem_rvalid" 1 in
  let dmem_rdata = input "dmem_rdata" dw in
  let fence_req = input "fence_req" 1 in
  let exc = input "exc" 1 in

  (* {2 Fence controller} *)
  let fence_state = reg "fence_state" 2 in
  let fence_wb_cnt = reg "fence_wb_cnt" 1 in
  let in_fence st = fence_state ==: of_int ~width:2 st in
  let fence_clear = in_fence f_clear in
  (* Plain fence.t completes without clearing any microarchitectural
     state (the paper's baseline that motivates the flushing variants). *)
  let fence_wipe =
    match config.mode with Plain_fence -> gnd | Full_flush | Microreset -> fence_clear
  in
  let fence_busy = ~:(in_fence f_idle) in

  (* {2 Instruction cache (2 lines, direct-mapped)} — the data array
     models SRAM: the fence clears the valid bits but not the contents. *)
  let pc = reg "pc" aw in
  let nil = params.icache_lines in
  let iv = Array.init nil (fun i -> reg (Printf.sprintf "icache_valid%d" i) 1) in
  let itag =
    Array.init nil (fun i ->
        reg (Printf.sprintf "icache_tag%d" i) (aw - max 1 (clog2 nil)))
  in
  let idata = Array.init nil (fun i -> reg (Printf.sprintf "icache_data%d" i) dw) in
  let axi_pending = reg "axi_pending" 1 in
  let axi_addr = reg "axi_addr" aw in
  let pick arr idx =
    if Array.length arr = 1 then arr.(0) else mux idx (Array.to_list arr)
  in
  let ibits = max 1 (clog2 params.icache_lines) in
  let i_idx = select pc (ibits - 1) 0 in
  let i_tag = select pc (aw - 1) ibits in
  let i_hit = pick iv i_idx &: (pick itag i_idx ==: i_tag) in
  (* A fetch exception produces a valid response without a hit (C1). *)
  let iresp_valid = i_hit |: fetch_ex in
  let iresp_data_raw = pick idata i_idx in
  let iresp_data =
    if config.fix_c1 then mux2 i_hit iresp_data_raw (zero dw) else iresp_data_raw
  in
  (* Realigner: the "compressed" bit of the payload gates instruction
     delivery — with C1 present it reads garbage from an invalid line. *)
  let instr_valid = iresp_valid &: bit iresp_data 0 in
  (* pc advance is closed after the branch predictor is defined. *)
  (* Refills: request on miss; in microreset mode the frontend pauses
     while the fence is busy. *)
  let fetch_allowed =
    match config.mode with
    | Microreset -> ~:fence_busy
    | Full_flush | Plain_fence -> vdd
  in
  let axi_issue = ~:i_hit &: ~:fetch_ex &: ~:axi_pending &: fetch_allowed in
  let axi_fill = axi_rvalid &: axi_pending in
  reg_set_next axi_pending (mux2 axi_issue vdd (mux2 axi_fill gnd axi_pending));
  reg_set_next axi_addr (mux2 axi_issue pc axi_addr);
  let fill_idx = select axi_addr (ibits - 1) 0 in
  Array.iteri
    (fun i v ->
      let this = fill_idx ==: of_int ~width:ibits i in
      let set = axi_fill &: this in
      reg_set_next v (mux2 fence_wipe gnd (mux2 set vdd v));
      reg_set_next itag.(i) (mux2 set (select axi_addr (aw - 1) ibits) itag.(i));
      reg_set_next idata.(i) (mux2 set axi_rdata idata.(i)))
    iv;

  (* {2 Branch predictor (2-entry BTB)} — trained by resolved branches,
     steers the next fetch on a hit; the flushing fence.t variants clear
     the valid bits (the paper shrinks CVA6's predictor to 16 entries and
     flushes it; the plain fence leaves it as a classic channel). *)
  let br_resolve = input "br_resolve" 1 in
  let br_taken = input "br_taken" 1 in
  let br_pc = input "br_pc" aw in
  let br_target = input "br_target" aw in
  let nbtb = params.btb_entries in
  let bbits = max 1 (clog2 nbtb) in
  let btbv = Array.init nbtb (fun i -> reg (Printf.sprintf "btb_valid%d" i) 1) in
  let btbtag = Array.init nbtb (fun i -> reg (Printf.sprintf "btb_tag%d" i) (aw - bbits)) in
  let btbtgt = Array.init nbtb (fun i -> reg (Printf.sprintf "btb_target%d" i) aw) in
  let btb_idx a = select a (bbits - 1) 0 in
  let btb_hit =
    pick btbv (btb_idx pc) &: (pick btbtag (btb_idx pc) ==: select pc (aw - 1) bbits)
  in
  Array.iteri
    (fun i v ->
      let this = btb_idx br_pc ==: of_int ~width:bbits i in
      let train = br_resolve &: br_taken &: this in
      let untrain =
        br_resolve &: ~:br_taken &: this
        &: (btbtag.(i) ==: select br_pc (aw - 1) bbits)
      in
      reg_set_next v
        (mux2 fence_wipe gnd (mux2 train vdd (mux2 untrain gnd v)));
      reg_set_next btbtag.(i) (mux2 train (select br_pc (aw - 1) bbits) btbtag.(i));
      reg_set_next btbtgt.(i) (mux2 train br_target btbtgt.(i)))
    btbv;

  reg_set_next pc
    (mux2 instr_valid (mux2 btb_hit (pick btbtgt (btb_idx pc)) (pc +: one aw)) pc);

  (* {2 TLB (1 entry)} *)
  let tlb_valid = reg "tlb_valid" 1 in
  let tlb_vtag = reg "tlb_vtag" vw in
  let tlb_ppn = reg "tlb_ppn" aw in

  (* {2 Load unit with PTW and D$} *)
  let lsu_state = reg "lsu_state" 3 in
  let lsu_vaddr_r = reg "lsu_vaddr_r" vw in
  let ndl = params.dcache_lines in
  let dbits = max 1 (clog2 ndl) in
  let dv = Array.init ndl (fun i -> reg (Printf.sprintf "dcache_valid%d" i) 1) in
  let dtag = Array.init ndl (fun i -> reg (Printf.sprintf "dcache_tag%d" i) (aw - dbits)) in
  let ddata = Array.init ndl (fun i -> reg (Printf.sprintf "dcache_data%d" i) dw) in
  let dc_pending = reg "dc_pending" 1 in
  let dc_fill_addr = reg "dc_fill_addr" aw in
  let lsu_data_r = reg "lsu_data_r" dw in
  let in_lsu st = lsu_state ==: of_int ~width:3 st in
  let tlb_hit = tlb_valid &: (tlb_vtag ==: lsu_vaddr_r) in
  let paddr = tlb_ppn in
  let pte_addr = concat [ of_int ~width:(aw - vw) 2; lsu_vaddr_r ] in
  let d_idx addr = select addr (dbits - 1) 0 in
  let d_tag addr = select addr (aw - 1) dbits in
  let dc_hit addr = pick dv (d_idx addr) &: (pick dtag (d_idx addr) ==: d_tag addr) in
  (* The flush signal the PTW sees: exceptions and the fence clear. *)
  let ptw_flush = exc |: fence_clear in
  (* New operations are accepted in IDLE; the C3 fix also blocks them
     while the fence is busy. *)
  let accept_ok = if config.fix_c3 then ~:fence_busy else vdd in
  let accept = in_lsu l_idle &: lsu_req &: accept_ok in
  let walk_issue = in_lsu l_pwalk_req &: ~:dc_pending in
  let dc_issue = in_lsu l_dc &: tlb_hit &: ~:(dc_hit paddr) &: ~:dc_pending in
  let lsu_state_next =
    onehot_mux
      [
        (accept, mux2 tlb_hit (of_int ~width:3 l_dc) (of_int ~width:3 l_pwalk_req));
        ( in_lsu l_pwalk_req,
          mux2 walk_issue (of_int ~width:3 l_pwalk_wait) lsu_state );
        ( in_lsu l_pwalk_wait,
          (* Normal: the PTE response sends us to the D$ stage. C2: a
             flush in WAIT_RVALID aborts to IDLE, orphaning the pending
             response. *)
          mux2 dmem_rvalid (of_int ~width:3 l_dc)
            (if config.fix_c2 then lsu_state
             else mux2 ptw_flush (of_int ~width:3 l_idle) lsu_state) );
        ( in_lsu l_dc,
          mux2 tlb_hit
            (mux2 (dc_hit paddr) (of_int ~width:3 l_resp) (of_int ~width:3 l_fill))
            (of_int ~width:3 l_pwalk_req) );
        (in_lsu l_fill, mux2 dmem_rvalid (of_int ~width:3 l_resp) lsu_state);
        (in_lsu l_resp, of_int ~width:3 l_idle);
      ]
      ~default:lsu_state
  in
  reg_set_next lsu_state lsu_state_next;
  reg_set_next lsu_vaddr_r (mux2 accept lsu_vaddr lsu_vaddr_r);
  (* Memory-response bookkeeping: every outstanding D-side request is
     tracked by [dc_pending]; the standing fill rule below caches the
     response no matter what the FSM is doing by then. *)
  let dc_req = walk_issue |: dc_issue in
  let dc_req_addr = mux2 walk_issue pte_addr paddr in
  let dc_fill = dmem_rvalid &: dc_pending in
  reg_set_next dc_pending (mux2 dc_req vdd (mux2 dc_fill gnd dc_pending));
  reg_set_next dc_fill_addr (mux2 dc_req dc_req_addr dc_fill_addr);
  Array.iteri
    (fun i v ->
      let this = d_idx dc_fill_addr ==: of_int ~width:dbits i in
      let set = dc_fill &: this in
      reg_set_next v (mux2 fence_wipe gnd (mux2 set vdd v));
      reg_set_next dtag.(i) (mux2 set (d_tag dc_fill_addr) dtag.(i));
      reg_set_next ddata.(i) (mux2 set dmem_rdata ddata.(i)))
    dv;
  (* TLB refill on walk completion; the fence clears the valid bit. *)
  let tlb_fill = in_lsu l_pwalk_wait &: dmem_rvalid in
  reg_set_next tlb_valid (mux2 fence_wipe gnd (mux2 tlb_fill vdd tlb_valid));
  reg_set_next tlb_vtag (mux2 tlb_fill lsu_vaddr_r tlb_vtag);
  reg_set_next tlb_ppn (mux2 tlb_fill (select dmem_rdata (aw - 1) 0) tlb_ppn);
  (* Response data: captured on a D$ hit or a fill. *)
  reg_set_next lsu_data_r
    (mux2 dc_fill dmem_rdata
       (mux2 (in_lsu l_dc &: tlb_hit &: dc_hit paddr) (pick ddata (d_idx paddr)) lsu_data_r));
  let lsu_rvalid = in_lsu l_resp in

  (* {2 Fence FSM} — microreset drains (load unit idle, no outstanding
     AXI refill, and with the C3 fix no outstanding D-side response),
     writes back for two cycles, then clears in one cycle. Full flush
     skips the drain entirely. *)
  let lsu_idle = in_lsu l_idle in
  let drained = lsu_idle &: ~:axi_pending in
  let fence_state_next =
    onehot_mux
      [
        ( in_fence f_idle,
          mux2 fence_req
            (of_int ~width:2
               (match config.mode with
               | Microreset -> f_drain
               | Full_flush | Plain_fence -> f_wb))
            fence_state );
        (in_fence f_drain, mux2 drained (of_int ~width:2 f_wb) fence_state);
        ( in_fence f_wb,
          mux2 (fence_wb_cnt ==: one 1) (of_int ~width:2 f_clear) fence_state );
        (in_fence f_clear, of_int ~width:2 f_idle);
      ]
      ~default:fence_state
  in
  reg_set_next fence_state fence_state_next;
  reg_set_next fence_wb_cnt (mux2 (in_fence f_wb) (fence_wb_cnt +: one 1) (zero 1));

  let dmem_req_addr_o = mux2 dc_req dc_req_addr (zero aw) in
  let lsu_rdata_o = mux2 lsu_rvalid lsu_data_r (zero dw) in
  Circuit.create ~name:"cva6lite"
    ~boundaries:
      [
        (* The load unit as a submodule boundary (Sec. 3.4): blackboxing
           it removes the TLB/PTW/D$ state from the DUT and turns the
           wires at the cut into interface signals under the usual
           assumptions/assertions. *)
        {
          Circuit.bnd_name = "lsu";
          bnd_outputs =
            [
              ("idle", lsu_idle);
              ("dmem_req_valid", dc_req);
              ("dmem_req_addr", dmem_req_addr_o);
              ("lsu_rvalid", lsu_rvalid);
              ("lsu_rdata", lsu_rdata_o);
            ];
          bnd_inputs = [ ("fence_busy", fence_busy); ("fence_clear", fence_clear) ];
        };
      ]
    ~in_tx:
      [
        { Circuit.tx_name = "axi_resp"; valid = "axi_rvalid"; payloads = [ "axi_rdata" ] };
        { Circuit.tx_name = "lsu"; valid = "lsu_req"; payloads = [ "lsu_vaddr" ] };
        { Circuit.tx_name = "br"; valid = "br_resolve"; payloads = [ "br_taken"; "br_pc"; "br_target" ] };
        { Circuit.tx_name = "dmem_resp"; valid = "dmem_rvalid"; payloads = [ "dmem_rdata" ] };
      ]
    ~out_tx:
      [
        { Circuit.tx_name = "axi_req"; valid = "axi_req_valid"; payloads = [ "axi_req_addr" ] };
        { Circuit.tx_name = "dmem_req"; valid = "dmem_req_valid"; payloads = [ "dmem_req_addr" ] };
        { Circuit.tx_name = "lsu_resp"; valid = "lsu_rvalid"; payloads = [ "lsu_rdata" ] };
      ]
    ~outputs:
      [
        ("fetch_addr", pc);
        ("axi_req_valid", axi_issue);
        ("axi_req_addr", mux2 axi_issue pc (zero aw));
        ("dmem_req_valid", dc_req);
        ("dmem_req_addr", dmem_req_addr_o);
        ("lsu_rvalid", lsu_rvalid);
        ("lsu_rdata", lsu_rdata_o);
        ("fence_busy", fence_busy);
      ]
    ()

let flush_done () dut map_a map_b =
  let st = Circuit.find_reg dut "fence_state" in
  let clear m = m st ==: of_int ~width:2 f_clear in
  clear map_a &: clear map_b

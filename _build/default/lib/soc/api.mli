(** System-level co-simulation of the MAPLE engine.

    This is the Listing 2 substrate: the MAPLE RTL runs in the
    cycle-accurate simulator against a small memory model (the NoC and
    memory controller of the OpenPiton setup), and this module exposes the
    software API the paper's C test uses ([dec_init],
    [dec_set_array_base], [dec_load_word_async], [dec_consume_word]).

    The memory model serves a 16-entry identity array ([array[i] = i]) at
    {!vaddr_array}, standing in for the 256-entry [mmap]ed array of the
    paper's exploit (the model's address space is 8 bits wide, so a
    nibble rather than a byte is leaked per iteration). *)

type t

val vaddr_array : int
(** Base virtual address of the spy's identity array. *)

val array_size : int

val create : ?config:Duts.Maple.config -> unit -> t
val cycles : t -> int

val dec_init : t -> unit
(** Allocate the engine: runs the cleanup (invalidation) operation and
    waits for it to complete — the context-switch flush. *)

val dec_close : t -> unit
(** De-allocate; a no-op in hardware terms, kept for API fidelity. *)

val dec_set_array_base : t -> int -> unit
val dec_set_tlb_enable : t -> bool -> unit

val dec_load_word_async : t -> int -> unit
(** Ask MAPLE to fetch [array_base + idx]. *)

val dec_consume_word : t -> int
(** Block until data is available in the return queue and pop it. *)

val last_fault : t -> bool
(** Whether the most recent load faulted in the TLB check. *)

let vaddr_array = 0x10
let array_size = 16

type t = {
  sim : Sim.t;
  mutable cycles : int;
  mutable resp_pending : int option; (* address accepted last cycle *)
  mutable last_fault : bool;
}

let create ?config () =
  let sim = Sim.create (Duts.Maple.create ?config ()) in
  Sim.set_input_int sim "noc_req_ready" 1;
  { sim; cycles = 0; resp_pending = None; last_fault = false }

let cycles t = t.cycles

(* The memory model: an identity array at [vaddr_array], zeros
   elsewhere. *)
let memory addr =
  if addr >= vaddr_array && addr < vaddr_array + array_size then addr - vaddr_array
  else 0

(* Advance one cycle: the memory model turns last cycle's accepted NoC
   request into this cycle's response. *)
let step t =
  (match t.resp_pending with
  | Some addr ->
      Sim.set_input_int t.sim "noc_resp_valid" 1;
      Sim.set_input_int t.sim "noc_resp_data" (memory addr)
  | None -> Sim.set_input_int t.sim "noc_resp_valid" 0);
  let accepted =
    if Sim.out_int t.sim "noc_req_valid" = 1 then
      Some (Sim.out_int t.sim "noc_req_addr")
    else None
  in
  t.last_fault <- Sim.out_int t.sim "fault" = 1 || t.last_fault;
  Sim.step t.sim;
  t.cycles <- t.cycles + 1;
  t.resp_pending <- accepted

let idle_inputs t =
  List.iter
    (fun n -> Sim.set_input_int t.sim n 0)
    [ "cfg_wen"; "req_valid"; "consume" ]

let cfg_write t addr data =
  idle_inputs t;
  Sim.set_input_int t.sim "cfg_wen" 1;
  Sim.set_input_int t.sim "cfg_addr" addr;
  Sim.set_input_int t.sim "cfg_wdata" data;
  step t;
  idle_inputs t

let dec_init t =
  cfg_write t Duts.Maple.cfg_cleanup 0;
  (* Wait for the invalidation FSM to return to idle. *)
  while Sim.out_int t.sim "inval_idle" = 0 do
    step t
  done

let dec_close t = ignore t
let dec_set_array_base t base = cfg_write t Duts.Maple.cfg_base base
let dec_set_tlb_enable t en = cfg_write t Duts.Maple.cfg_tlb_en (if en then 1 else 0)

let dec_load_word_async t idx =
  idle_inputs t;
  t.last_fault <- false;
  Sim.set_input_int t.sim "req_valid" 1;
  Sim.set_input_int t.sim "req_idx" (idx land 0xF);
  step t;
  idle_inputs t

let dec_consume_word t =
  idle_inputs t;
  let guard = ref 0 in
  while Sim.out_int t.sim "resp_valid" = 0 && !guard < 100 do
    step t;
    incr guard
  done;
  if Sim.out_int t.sim "resp_valid" = 0 then
    failwith "dec_consume_word: no response (request faulted or dropped)";
  let data = Sim.out_int t.sim "resp_data" in
  Sim.set_input_int t.sim "consume" 1;
  step t;
  idle_inputs t;
  data

let last_fault t = t.last_fault

lib/soc/api.ml: Duts List Sim

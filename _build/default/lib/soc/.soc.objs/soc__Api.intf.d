lib/soc/api.mli: Duts

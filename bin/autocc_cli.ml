(* Command-line front-end mirroring the paper's artifact flow (Appendix
   A.5): pick a DUT, generate the FPV testbench, run the exhaustive
   search, and inspect counterexamples — plus the system-level exploit and
   the flush-synthesis algorithms.

     autocc analyze --dut vscale --stage 2
     autocc analyze --dut maple --fix-m2 --trace maple.json
     autocc prove --dut aes
     autocc exploit --secret 0xdeadbeef
     autocc synthesize --algorithm incremental
     autocc stats *)

open Cmdliner

(* {1 Telemetry}

   Every verification subcommand accepts --trace/--log-json/--log-level;
   any of the outputs being requested also turns the metric registry on,
   so the run's counters land in the [stats]-style summary and the
   structured logs. *)

let setup_telemetry ?metrics_file trace log_json log_level =
  (match Obs.level_of_string log_level with
  | Ok l -> Obs.set_level l
  | Error msg -> failwith msg);
  Option.iter Obs.trace_to_file trace;
  Option.iter Obs.log_to_file log_json;
  if trace <> None || log_json <> None || metrics_file <> None then
    Obs.Metrics.enable ();
  (* --metrics-file: a Prometheus text snapshot of the whole registry,
     atomically rewritten on a ticker for the lifetime of the command
     (and once more at shutdown). *)
  Option.iter (fun p -> Obs.Exposition.start p) metrics_file

(* {2 Run ledger}

   Verifying subcommands deposit a run record here (sans timings); the
   telemetry wrapper patches in the whole-command wall/CPU and appends
   it to <dir>/runs.jsonl on the way out, so the row covers everything
   from argument parsing to the last artifact write.  The ledger
   directory defaults to the verdict-cache directory: the cache's
   provenance records cite run ids, so the two stores belong together. *)

let pending_run : Obs.Ledger.run option ref = ref None

let cache_counts cache =
  match cache with
  | None -> (0, 0, 0)
  | Some c ->
      let st = Cache.stats c in
      (st.Cache.hits, st.Cache.misses, st.Cache.stores)

let record_run ?(asserts = []) ?(artifacts = []) ?(config = "")
    ?(dut_hash = "") ~tool ~subject cache =
  let hits, misses, stores = cache_counts cache in
  pending_run :=
    Some
      {
        Obs.Ledger.r_id = Obs.Ledger.run_id ();
        r_tool = tool;
        r_subject = subject;
        r_config = config;
        r_dut_hash = dut_hash;
        r_ts = Unix.gettimeofday ();
        (* patched by [with_telemetry] at append time *)
        r_wall_s = 0.;
        r_cpu_s = 0.;
        r_cache_hits = hits;
        r_cache_misses = misses;
        r_cache_stores = stores;
        r_asserts = asserts;
        r_artifacts = List.filter Sys.file_exists artifacts;
      }

let with_telemetry ?metrics_file ?ledger_dir ~cmd trace log_json log_level f =
  setup_telemetry ?metrics_file trace log_json log_level;
  pending_run := None;
  let t0 = Unix.gettimeofday () in
  let cpu0 = Sys.time () in
  let r =
    Fun.protect ~finally:Obs.shutdown @@ fun () ->
    (* The root span covers the whole command, so [autocc profile]'s
       attributed total matches the ledger row's wall to within the
       setup/teardown epsilon. *)
    let r = Obs.span ("cli." ^ cmd) f in
    (match !pending_run with
    | None -> ()
    | Some run -> (
        match Obs.Ledger.resolve_dir ?explicit:ledger_dir () with
        | None -> ()
        | Some dir -> (
            let run =
              {
                run with
                Obs.Ledger.r_wall_s = Unix.gettimeofday () -. t0;
                r_cpu_s = Sys.time () -. cpu0;
              }
            in
            try
              Obs.Ledger.append ~dir run;
              Format.printf "Run %s recorded in %s@." run.Obs.Ledger.r_id
                (Obs.Ledger.path dir)
            with Sys_error msg ->
              (* Best-effort, like the verdict cache's disk half: an
                 unwritable ledger never fails the verification run. *)
              Format.eprintf "autocc: run ledger skipped: %s@." msg)));
    r
  in
  Option.iter (fun p -> Format.printf "Trace written to %s (load at ui.perfetto.dev)@." p) trace;
  Option.iter (fun p -> Format.printf "Structured log written to %s@." p) log_json;
  Option.iter (fun p -> Format.printf "Metrics snapshot written to %s@." p) metrics_file;
  r

let print_metrics_summary () =
  let render = function
    | Obs.Metrics.Counter n -> string_of_int n
    | Obs.Metrics.Gauge g -> Printf.sprintf "%.6g" g
    | Obs.Metrics.Histogram h ->
        Printf.sprintf "count=%d sum=%.4fs%s" h.count h.sum
          (if h.count = 0 then ""
           else Printf.sprintf " mean=%.4fs" (h.sum /. float_of_int h.count))
    | Obs.Metrics.Series a ->
        String.concat " "
          (Array.to_list
             (Array.mapi (fun i x -> Printf.sprintf "[%d]=%.3fs" i x) a))
  in
  Format.printf "@.%-26s value@." "metric";
  Format.printf "%s@." (String.make 60 '-');
  List.iter
    (fun (name, v) -> Format.printf "%-26s %s@." name (render v))
    (Obs.Metrics.snapshot ())

(* DUT-name -> circuit/property construction lives in [Duts.Bundled] so
   the service worker processes build exactly what the CLI builds; these
   wrappers only adapt the CLI's flat flag spelling. *)
let known_duts = Duts.Bundled.known

let build_dut name ~stage ~fix_m2 ~fix_m3 ~fix_c1 ~fix_c2 ~fix_c3 ~full_flush =
  ignore stage;
  Duts.Bundled.build
    ~fixes:{ Duts.Bundled.fix_m2; fix_m3; fix_c1; fix_c2; fix_c3; full_flush }
    name

let ft_for name dut ~stage ~threshold = Duts.Bundled.ft_for ~stage ~threshold name dut

(* {1 analyze} *)

(* [--timeout]/[--conflict-budget] become a per-solver-run [Bmc.budget];
   [--retries n] becomes a [Retry] policy with n retries over escalated
   budgets and the portfolio's alternate configurations. *)
let budget_of timeout conflicts =
  match (timeout, conflicts) with
  | None, None -> Bmc.no_budget
  | _ -> Bmc.budget ?wall_s:timeout ?conflicts ()

let retry_of retries =
  if retries = 0 then None else Some (Retry.policy ~max_attempts:(retries + 1) ())

(* The verdict cache is on only when a directory is given (--cache-dir
   or AUTOCC_CACHE_DIR): a single CLI invocation has nothing to gain
   from a purely in-memory cache, the payoff is cross-run. *)
let cache_of cache_dir no_cache =
  if no_cache then None
  else Option.map (fun d -> Cache.create ~dir:d ()) cache_dir

let print_cache_summary cache =
  match cache with
  | None -> ()
  | Some c ->
      let st = Cache.stats c in
      Format.printf
        "Cache: %d hits, %d misses, %d stores, %d rejects, %d evictions, %d \
         live entries (%s)@."
        st.Cache.hits st.Cache.misses st.Cache.stores st.Cache.rejects
        st.Cache.evictions st.Cache.size
        (match Cache.dir c with Some d -> d | None -> "memory")

let analyze dut_name verilog top blackbox stage threshold max_depth jobs portfolio
    timeout conflict_budget retries
    opt_level no_incremental no_symmetric cache_dir no_cache
    fix_m2 fix_m3 fix_c1 fix_c2 fix_c3 full_flush
    verbose vcd trace log_json log_level metrics_file =
  let incremental = not no_incremental in
  let symmetric = not no_symmetric in
  let cache = cache_of cache_dir no_cache in
  with_telemetry ?metrics_file ?ledger_dir:cache_dir ~cmd:"analyze" trace
    log_json log_level
  @@ fun () ->
  let dut =
    match verilog with
    | Some path ->
        (* The paper's primary flow: the path to an RTL module is all the
           tool needs. *)
        Frontend.Elaborate.circuit_of_file ?top path
    | None -> (
        match dut_name with
        | Some name ->
            build_dut name ~stage ~fix_m2 ~fix_m3 ~fix_c1 ~fix_c2 ~fix_c3 ~full_flush
        | None -> failwith "provide --dut or --verilog")
  in
  Format.printf "DUT: %a@." Rtl.Circuit.pp_stats dut;
  let blackbox =
    if blackbox = "" then [] else String.split_on_char ',' blackbox
  in
  let ft =
    match (verilog, dut_name) with
    | None, Some name when blackbox = [] -> ft_for name dut ~stage ~threshold
    | _ -> Autocc.Ft.generate ~threshold ~blackbox dut
  in
  Format.printf "FT : %a@." Rtl.Circuit.pp_stats ft.Autocc.Ft.wrapper;
  let jobs = if jobs = 0 then Parallel.default_jobs () else jobs in
  let opt = Opt.level_of_int opt_level in
  let progress d = if verbose then Format.printf "  depth %d@." d in
  Format.printf "Running BMC to depth %d at -O%d%s...@." max_depth
    (Opt.level_to_int opt)
    (if portfolio > 1 then Printf.sprintf " (portfolio of %d on %d domains)" portfolio jobs
     else if jobs > 1 then Printf.sprintf " (%d worker domains)" jobs
     else "");
  let t0 = Unix.gettimeofday () in
  let budget = budget_of timeout conflict_budget in
  let retry = retry_of retries in
  let outcome =
    if jobs > 1 || portfolio > 1 then begin
      let portfolio = if portfolio > 1 then Some portfolio else None in
      let outcome, detail =
        Autocc.Ft.check_detailed ~max_depth ~progress ~jobs ?portfolio ~budget
          ?retry ~opt ~incremental ~symmetric ?cache ft
      in
      Format.printf "Parallel run: %a@." Autocc.Report.pp_merged
        (Autocc.Report.merge_stats detail);
      outcome
    end
    else
      Autocc.Ft.check ~max_depth ~progress ~budget ?retry ~opt ~incremental
        ~symmetric ?cache ft
  in
  let report_opt (stats : Bmc.stats) =
    match stats.Bmc.opt with
    | Some o when jobs <= 1 && portfolio <= 1 ->
        Format.printf "Optimizer: %a@." Opt.pp_stats o
    | _ -> ()
  in
  (match outcome with
  | Bmc.Cex (cex, stats) ->
      report_opt stats;
      Format.printf "@.Counterexample found (%.2fs in the solver, %d conflicts):@.@."
        stats.Bmc.solve_time stats.Bmc.conflicts;
      Autocc.Report.explain Format.std_formatter ft cex;
      Autocc.Report.pp_first_divergence Format.std_formatter ft cex;
      Format.printf "@.@.Provenance:@.";
      Explain.pp_slice Format.std_formatter (Explain.slice ft cex);
      (match vcd with
      | Some path ->
          Autocc.Report.dump_vcd ~path ft cex;
          Format.printf "@.Waveform written to %s@." path
      | None -> ())
  | Bmc.Bounded_proof stats ->
      report_opt stats;
      Format.printf "@.Bounded proof: no CEX up to depth %d (%.2fs in the solver).@."
        stats.Bmc.depth_reached stats.Bmc.solve_time
  | Bmc.Unknown (reason, stats) ->
      report_opt stats;
      Format.printf
        "@.Unknown (%s): %s, inconclusive beyond (%.2fs in the solver). Raise \
         --timeout/--conflict-budget or --retries to go further.@."
        (Bmc.unknown_reason_to_string reason)
        (if stats.Bmc.depth_reached < 0 then "no depth completed"
         else Printf.sprintf "clean up to depth %d" stats.Bmc.depth_reached)
        stats.Bmc.solve_time);
  print_cache_summary cache;
  let wall = Unix.gettimeofday () -. t0 in
  Format.printf "@.Total wall-clock: %.2fs@." wall;
  (let subject =
     match (dut_name, verilog) with
     | Some n, _ -> n
     | None, Some p -> Filename.basename p
     | None, None -> "?"
   in
   let dut_hash, _key, config =
     Bmc.cache_fingerprint ~engine:"check" ~max_depth ~opt ~incremental ~budget
       ft.Autocc.Ft.property
   in
   let a_verdict, a_depth =
     match outcome with
     | Bmc.Cex (cex, _) -> ("cex", cex.Bmc.cex_depth)
     | Bmc.Bounded_proof st -> ("proof", st.Bmc.depth_reached)
     | Bmc.Unknown (reason, st) ->
         ("unknown:" ^ Bmc.unknown_reason_to_string reason, st.Bmc.depth_reached)
   in
   let hits, _, _ = cache_counts cache in
   record_run ~tool:"analyze" ~subject ~config ~dut_hash cache
     ~asserts:
       [
         {
           Obs.Ledger.a_name = "property";
           a_verdict;
           a_depth;
           a_wall_s = wall;
           a_cached = hits > 0;
         };
       ]
     ~artifacts:(List.filter_map Fun.id [ vcd; trace; log_json; metrics_file ]));
  if Obs.Metrics.enabled () then print_metrics_summary ();
  0

(* {1 prove} *)

let prove dut_name verilog top stage threshold max_depth jobs timeout
    conflict_budget retries opt_level no_incremental no_symmetric cache_dir
    no_cache verbose vcd trace log_json log_level metrics_file =
  let incremental = not no_incremental in
  let symmetric = not no_symmetric in
  let cache = cache_of cache_dir no_cache in
  with_telemetry ?metrics_file ?ledger_dir:cache_dir ~cmd:"prove" trace
    log_json log_level
  @@ fun () ->
  let dut =
    match verilog with
    | Some path -> Frontend.Elaborate.circuit_of_file ?top path
    | None -> (
        match dut_name with
        | Some name ->
            build_dut name ~stage ~fix_m2:false ~fix_m3:false ~fix_c1:false
              ~fix_c2:false ~fix_c3:false ~full_flush:false
        | None -> failwith "provide --dut or --verilog")
  in
  Format.printf "DUT: %a@." Rtl.Circuit.pp_stats dut;
  let ft =
    match (verilog, dut_name) with
    | None, Some name -> ft_for name dut ~stage ~threshold
    | _ -> Autocc.Ft.generate ~threshold dut
  in
  Format.printf "FT : %a@." Rtl.Circuit.pp_stats ft.Autocc.Ft.wrapper;
  let jobs = if jobs = 0 then Parallel.default_jobs () else jobs in
  let opt = Opt.level_of_int opt_level in
  let progress k = if verbose then Format.printf "  k=%d@." k in
  Format.printf "Running k-induction to depth %d at -O%d%s...@." max_depth
    (Opt.level_to_int opt)
    (if jobs > 1 then Printf.sprintf " (%d worker domains)" jobs else "");
  let t0 = Unix.gettimeofday () in
  let budget = budget_of timeout conflict_budget in
  let outcome =
    Autocc.Ft.prove ~max_depth ~progress ~jobs ~budget
      ?retry:(retry_of retries) ~opt ~incremental ~symmetric ?cache ft
  in
  (match outcome with
  | Bmc.Proved (k, stats) ->
      Format.printf
        "@.Proved by %d-induction (%.2fs in the solver, %d conflicts, %d propagations).@."
        k stats.Bmc.solve_time stats.Bmc.conflicts stats.Bmc.propagations
  | Bmc.Refuted (cex, stats) ->
      Format.printf
        "@.Counterexample found (%.2fs in the solver, %d conflicts):@.@."
        stats.Bmc.solve_time stats.Bmc.conflicts;
      Autocc.Report.explain Format.std_formatter ft cex;
      Autocc.Report.pp_first_divergence Format.std_formatter ft cex;
      Format.printf "@.@.Provenance:@.";
      Explain.pp_slice Format.std_formatter (Explain.slice ft cex);
      (match vcd with
      | Some path ->
          Autocc.Report.dump_vcd ~path ft cex;
          Format.printf "@.Waveform written to %s@." path
      | None -> ())
  | Bmc.Unknown (reason, stats) ->
      Format.printf
        "@.Unknown (%s): neither proved nor refuted within depth %d (%.2fs in \
         the solver).@."
        (Bmc.unknown_reason_to_string reason)
        stats.Bmc.depth_reached stats.Bmc.solve_time);
  print_cache_summary cache;
  let wall = Unix.gettimeofday () -. t0 in
  Format.printf "@.Total wall-clock: %.2fs@." wall;
  (let subject =
     match (dut_name, verilog) with
     | Some n, _ -> n
     | None, Some p -> Filename.basename p
     | None, None -> "?"
   in
   let dut_hash, _key, config =
     Bmc.cache_fingerprint ~engine:"prove" ~max_depth ~opt ~incremental ~budget
       ft.Autocc.Ft.property
   in
   let a_verdict, a_depth =
     match outcome with
     | Bmc.Proved (k, _) -> ("proved", k)
     | Bmc.Refuted (cex, _) -> ("refuted", cex.Bmc.cex_depth)
     | Bmc.Unknown (reason, st) ->
         ("unknown:" ^ Bmc.unknown_reason_to_string reason, st.Bmc.depth_reached)
   in
   let hits, _, _ = cache_counts cache in
   record_run ~tool:"prove" ~subject ~config ~dut_hash cache
     ~asserts:
       [
         {
           Obs.Ledger.a_name = "property";
           a_verdict;
           a_depth;
           a_wall_s = wall;
           a_cached = hits > 0;
         };
       ]
     ~artifacts:(List.filter_map Fun.id [ vcd; trace; log_json; metrics_file ]));
  if Obs.Metrics.enabled () then print_metrics_summary ();
  0

(* {1 exploit} *)

let exploit secret fixed =
  let config =
    if fixed then Duts.Maple.fixed else { Duts.Maple.fix_m2 = true; fix_m3 = false }
  in
  let r = Soc.Exploit.run ~config ~secret ~iterations:8 () in
  Format.printf "secret    : 0x%08x@." secret;
  Format.printf "recovered : 0x%08x in %d cycles (%s RTL)@." r.Soc.Exploit.recovered
    r.Soc.Exploit.cycles
    (if fixed then "fixed" else "vulnerable");
  0

(* {1 synthesize} *)

let synthesize algorithm max_depth =
  let open Rtl.Signal in
  let engine () =
    let din = input "din" 8 in
    let cap = input "cap" 1 in
    let set_mode = input "set_mode" 1 in
    let query = input "query" 8 in
    let stash = reg "stash" 8 in
    let mode = reg "mode" 1 in
    let heartbeat = reg "heartbeat" 4 in
    reg_set_next stash (mux2 cap din stash);
    reg_set_next mode (mux2 set_mode (bit din 0) mode);
    reg_set_next heartbeat (heartbeat +: one 4);
    let hit = query ==: stash in
    Rtl.Circuit.create ~name:"engine"
      ~outputs:[ ("hit", mux2 mode hit gnd); ("beat", bit heartbeat 3) ]
      ()
  in
  let candidates = [ "stash"; "mode"; "heartbeat" ] in
  let r =
    match algorithm with
    | "incremental" ->
        Autocc.Synthesis.incremental ~max_depth ~threshold:2 ~candidates (engine ())
    | "decremental" ->
        Autocc.Synthesis.decremental ~max_depth ~threshold:2 ~candidates (engine ())
    | other -> failwith ("unknown algorithm " ^ other)
  in
  List.iter
    (fun step ->
      match step.Autocc.Synthesis.step_result with
      | `Cex (culprit, depth) ->
          Format.printf "flush {%s}: CEX depth %d -> %s@."
            (String.concat ", " step.Autocc.Synthesis.step_flush)
            (depth + 1) culprit
      | `Proof depth ->
          Format.printf "flush {%s}: proof to depth %d@."
            (String.concat ", " step.Autocc.Synthesis.step_flush)
            (depth + 1)
      | `Unknown reason ->
          Format.printf "flush {%s}: inconclusive (%s)@."
            (String.concat ", " step.Autocc.Synthesis.step_flush)
            reason)
    r.Autocc.Synthesis.steps;
  Format.printf "flush set: {%s} proved=%b@."
    (String.concat ", " r.Autocc.Synthesis.flush_set)
    r.Autocc.Synthesis.proved;
  0

(* {1 export} *)

let export dut_name dir threshold depth arch_regs =
  let dut =
    build_dut dut_name ~stage:0 ~fix_m2:false ~fix_m3:false ~fix_c1:false
      ~fix_c2:false ~fix_c3:false ~full_flush:false
  in
  let arch_regs = if arch_regs = "" then [] else String.split_on_char ',' arch_regs in
  Autocc.Sva.write_flow ~dir ~threshold ~arch_regs ~depth dut;
  let name = Rtl.Verilog.sanitize (Rtl.Circuit.name dut) in
  Format.printf "wrote %s/%s.sv, %s/ft_%s.sv, %s/%s.sby@." dir name dir name dir name;
  Format.printf "run with: sby -f %s/%s.sby@." dir name;
  0

(* {1 stats} *)

let stats dut_name max_depth jobs opt_level trace log_json log_level
    metrics_file =
  with_telemetry ?metrics_file ~cmd:"stats" trace log_json log_level @@ fun () ->
  List.iter
    (fun name ->
      let dut =
        build_dut name ~stage:0 ~fix_m2:false ~fix_m3:false ~fix_c1:false
          ~fix_c2:false ~fix_c3:false ~full_flush:false
      in
      Format.printf "%a@." Rtl.Circuit.pp_stats dut)
    known_duts;
  (* Instrumented run: enable the metric registry, check one DUT, and
     print the whole-pipeline telemetry summary (solver counters, CNF
     sizes, per-depth timings, opt reductions). *)
  Obs.Metrics.enable ();
  let dut =
    build_dut dut_name ~stage:0 ~fix_m2:false ~fix_m3:false ~fix_c1:false
      ~fix_c2:false ~fix_c3:false ~full_flush:false
  in
  let ft = ft_for dut_name dut ~stage:0 ~threshold:2 in
  let jobs = if jobs = 0 then Parallel.default_jobs () else jobs in
  let opt = Opt.level_of_int opt_level in
  Format.printf "@.Instrumented BMC on %s to depth %d at -O%d...@." dut_name
    max_depth (Opt.level_to_int opt);
  let t0 = Unix.gettimeofday () in
  (* An in-memory cache so the cache.* counters (hits/misses/stores and
     the live-size gauge) show up in the metric table alongside the
     solver counters — the sweep re-queries shared cones, so even a
     single run exercises them. *)
  let cache = Cache.create () in
  let outcome = Autocc.Ft.check ~max_depth ~jobs ~opt ~cache ft in
  (match outcome with
  | Bmc.Cex (cex, _) ->
      Format.printf "verdict: CEX at depth %d@." cex.Bmc.cex_depth;
      Autocc.Report.pp_first_divergence Format.std_formatter ft cex;
      Format.printf "@."
  | Bmc.Bounded_proof st ->
      Format.printf "verdict: bounded proof to depth %d@." st.Bmc.depth_reached
  | Bmc.Unknown (reason, st) ->
      Format.printf "verdict: unknown (%s), clean to depth %d@."
        (Bmc.unknown_reason_to_string reason)
        st.Bmc.depth_reached);
  Format.printf "wall: %.2fs@." (Unix.gettimeofday () -. t0);
  print_cache_summary (Some cache);
  print_metrics_summary ();
  0

(* {1 campaign} *)

let campaign duts threshold max_depth timeout conflict_budget retries resume
    opt_level no_incremental no_symmetric cache_dir no_cache out_dir trace
    log_json log_level metrics_file =
  let incremental = not no_incremental in
  let symmetric = not no_symmetric in
  let cache = cache_of cache_dir no_cache in
  with_telemetry ?metrics_file ?ledger_dir:cache_dir ~cmd:"campaign" trace
    log_json log_level
  @@ fun () ->
  (* The artifacts embed a telemetry snapshot, so the registry is always
     on for a campaign. *)
  Obs.Metrics.enable ();
  let entries =
    List.map
      (fun name ->
        {
          Explain.Campaign.e_label = name;
          e_dut = name;
          e_ft =
            (fun () ->
              let dut =
                build_dut name ~stage:0 ~fix_m2:false ~fix_m3:false
                  ~fix_c1:false ~fix_c2:false ~fix_c3:false ~full_flush:false
              in
              ft_for name dut ~stage:0 ~threshold);
          e_max_depth = max_depth;
        })
      duts
  in
  let opt = Opt.level_of_int opt_level in
  Format.printf
    "Campaign over %s: per-assertion CEX sweep to depth %d at -O%d, then \
     slice, minimize and cluster.@.@."
    (String.concat ", " duts) max_depth (Opt.level_to_int opt);
  let t0 = Unix.gettimeofday () in
  (* SIGTERM/SIGINT finish the entry in flight, skip the rest and exit
     through the normal checkpoint path, so the campaign directory is
     always resumable — `--resume` after a signal picks up exactly
     where the persisted index stops, byte-stably. *)
  let stop = Atomic.make false in
  let stop_handler = Sys.Signal_handle (fun _ -> Atomic.set stop true) in
  let prev_term = Sys.signal Sys.sigterm stop_handler in
  let prev_int = Sys.signal Sys.sigint stop_handler in
  let result =
    Fun.protect ~finally:(fun () ->
        Sys.set_signal Sys.sigterm prev_term;
        Sys.set_signal Sys.sigint prev_int)
    @@ fun () ->
    Explain.Campaign.run ~opt ~incremental ~symmetric ?cache
      ~budget:(budget_of timeout conflict_budget)
      ?retry:(retry_of retries) ~resume ~out_dir
      ~should_stop:(fun () -> Atomic.get stop)
      entries
  in
  if Atomic.get stop then
    Format.printf
      "Interrupted: checkpoint persisted after %d/%d entries; finish with \
       --resume.@.@."
      (List.length result.Explain.Campaign.c_results)
      (List.length entries);
  Explain.Campaign.pp Format.std_formatter result;
  print_cache_summary cache;
  Format.printf "@.Total wall-clock: %.2fs@." (Unix.gettimeofday () -. t0);
  List.iter
    (fun p -> Format.printf "artifact: %s@." p)
    result.Explain.Campaign.c_artifacts;
  (let config =
     Bmc.cache_config ~engine:"check" ~max_depth ~opt ~incremental
       ~solver_config:None
       ~budget:(budget_of timeout conflict_budget)
   in
   let asserts =
     List.map
       (fun (r : Explain.Campaign.entry_result) ->
         let a_verdict =
           match r.Explain.Campaign.r_status with
           | `Failed msg -> "failed:" ^ msg
           | `Done ->
               Printf.sprintf "done:%d-channels%s"
                 (List.length r.Explain.Campaign.r_index)
                 (if r.Explain.Campaign.r_unknowns > 0 then
                    Printf.sprintf ",%d-unknown" r.Explain.Campaign.r_unknowns
                  else "")
         in
         {
           Obs.Ledger.a_name = r.Explain.Campaign.r_label;
           a_verdict;
           a_depth = r.Explain.Campaign.r_depth;
           a_wall_s = float_of_int r.Explain.Campaign.r_wall_ms /. 1000.;
           a_cached = r.Explain.Campaign.r_resumed;
         })
       result.Explain.Campaign.c_results
   in
   record_run ~tool:"campaign" ~subject:(String.concat "," duts) ~config cache
     ~asserts ~artifacts:result.Explain.Campaign.c_artifacts);
  if Obs.Metrics.enabled () then print_metrics_summary ();
  (* 130 = interrupted, the conventional SIGINT exit; the checkpoint
     above already made the interruption recoverable. *)
  if Atomic.get stop then 130 else 0

(* {1 top} *)

(* Heartbeat sidecar of a campaign directory (written atomically by
   Explain.Campaign): owner pid plus per-entry start/beat timestamps.
   Parsed here rather than through Explain so [top] depends only on the
   artifact schema, exactly like an external dashboard would. *)
type heartbeats = {
  hb_pid : int;
  hb_entries : (string * (float * bool)) list;  (* label -> beat_s, done *)
}

let read_heartbeats dir =
  let path = Filename.concat dir "heartbeats.json" in
  if not (Sys.file_exists path) then None
  else
    try
      let ic = open_in_bin path in
      let s =
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      match Obs.Json.parse s with
      | Error _ -> None
      | Ok j
        when Obs.Json.member "schema" j
             <> Some (Obs.Json.Str "autocc.heartbeat/1") ->
          None
      | Ok j ->
        let pid =
          match Obs.Json.member "pid" j with Some (Obs.Json.Int p) -> p | _ -> 0
        in
        let entries =
          match Obs.Json.member "entries" j with
          | Some (Obs.Json.Obj kvs) ->
              List.filter_map
                (fun (label, e) ->
                  match
                    (Obs.Json.member "beat_s" e, Obs.Json.member "done" e)
                  with
                  | Some (Obs.Json.Float b), Some (Obs.Json.Bool d) ->
                      Some (label, (b, d))
                  | _ -> None)
                kvs
          | _ -> []
        in
        Some { hb_pid = pid; hb_entries = entries }
    with Sys_error _ | Failure _ -> None

let pid_alive pid =
  pid > 0
  && (try
        Unix.kill pid 0;
        true
      with Unix.Unix_error _ -> false)

(* The cockpit row labels are "entry" or "entry/assertion"; heartbeats
   are keyed by entry. *)
let entry_of_label label =
  match String.index_opt label '/' with
  | Some i -> String.sub label 0 i
  | None -> label

let heartbeat_note hb ~stale ~now label =
  match hb with
  | None -> None
  | Some hb -> (
      match List.assoc_opt (entry_of_label label) hb.hb_entries with
      | Some (beat, false) when now -. beat > stale ->
          if pid_alive hb.hb_pid then
            Some (Printf.sprintf "SLOW (beat %.0fs ago)" (now -. beat))
          else Some "CRASHED (pid gone)"
      | _ -> None)

let top out_dir once json interval duration stale =
  let once = once || json in
  let events_path = Filename.concat out_dir "events.jsonl" in
  let cockpit = Obs.Cockpit.create () in
  (* Cross-process tailing (truncation-aware, torn trailing line carried
     to the next tick) is Obs.Tail — the same machinery the tests drive
     against a writer mid-append. *)
  let tail = Obs.Tail.create events_path in
  let drain () =
    List.iter (Obs.Cockpit.feed_line cockpit) (Obs.Tail.poll tail)
  in
  let t_start = Unix.gettimeofday () in
  let rec frame () =
    drain ();
    let now = Unix.gettimeofday () in
    let hb = read_heartbeats out_dir in
    let note = heartbeat_note hb ~stale ~now in
    if json then
      print_string
        (Obs.Json.to_string (Obs.Cockpit.render_json ~now ~note cockpit) ^ "\n")
    else begin
      if not once then print_string "\027[2J\027[H";
      print_string (Obs.Cockpit.render ~now ~note cockpit)
    end;
    flush stdout;
    let settled () =
      List.for_all
        (fun r -> r.Obs.Cockpit.ro_verdict <> "running")
        (Obs.Cockpit.rows cockpit)
    in
    let finished =
      (* The campaign is over when its heartbeat file marks every entry
         done, or when the owning process is gone and nothing is
         running any more. *)
      match hb with
      | Some { hb_entries = _ :: _ as entries; hb_pid } ->
          List.for_all (fun (_, (_, d)) -> d) entries
          || ((not (pid_alive hb_pid)) && settled ())
      | _ ->
          (* A cleanly completed campaign deletes its heartbeat sidecar
             on exit, so "events but no heartbeat file, and every row is
             settled" also means over.  A campaign that has not produced
             events yet has no rows and keeps us polling. *)
          Obs.Cockpit.rows cockpit <> []
          && (not (Sys.file_exists (Filename.concat out_dir "heartbeats.json")))
          && settled ()
    in
    let timed_out =
      match duration with Some d -> now -. t_start >= d | None -> false
    in
    if once || finished || timed_out then 0
    else begin
      Unix.sleepf interval;
      frame ()
    end
  in
  if (not (Sys.file_exists events_path)) && not (Sys.file_exists out_dir) then
    failwith (Printf.sprintf "no campaign directory at %s" out_dir);
  frame ()

(* {1 history / diff-runs / why / profile}

   Post-mortem archaeology over the run ledger and the verdict cache.
   These are strictly read-only: they record no ledger row of their own
   and never touch the cache's hit/miss counters. *)

let ledger_dir_of ledger_dir =
  match Obs.Ledger.resolve_dir ?explicit:ledger_dir () with
  | Some dir -> dir
  | None ->
      failwith
        "no ledger directory: give --ledger-dir, or set AUTOCC_LEDGER_DIR or \
         AUTOCC_CACHE_DIR"

let fmt_ts ts =
  let tm = Unix.localtime ts in
  Printf.sprintf "%04d-%02d-%02d %02d:%02d:%02d" (tm.Unix.tm_year + 1900)
    (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min
    tm.Unix.tm_sec

let clip n s = if String.length s <= n then s else String.sub s 0 (n - 2) ^ ".."

(* "3 cex, 1 unknown"-style roll-up of a run's assertion records, keyed
   by the verdict kind (the part before any ':' detail). *)
let verdict_summary = function
  | [] -> "-"
  | asserts ->
      let tally = Hashtbl.create 4 in
      let order = ref [] in
      List.iter
        (fun (a : Obs.Ledger.assert_record) ->
          let k =
            match String.index_opt a.Obs.Ledger.a_verdict ':' with
            | Some i -> String.sub a.Obs.Ledger.a_verdict 0 i
            | None -> a.Obs.Ledger.a_verdict
          in
          if not (Hashtbl.mem tally k) then order := k :: !order;
          Hashtbl.replace tally k
            (1 + Option.value ~default:0 (Hashtbl.find_opt tally k)))
        asserts;
      String.concat ", "
        (List.rev_map
           (fun k -> Printf.sprintf "%d %s" (Hashtbl.find tally k) k)
           !order)

let rec list_drop n l =
  if n <= 0 then l else match l with [] -> [] | _ :: t -> list_drop (n - 1) t

let history ledger_dir tool subject last =
  let dir = ledger_dir_of ledger_dir in
  let runs, bad = Obs.Ledger.load dir in
  let keep (r : Obs.Ledger.run) =
    (match tool with None -> true | Some t -> r.Obs.Ledger.r_tool = t)
    && match subject with None -> true | Some s -> r.Obs.Ledger.r_subject = s
  in
  let runs = List.filter keep runs in
  let runs =
    if last > 0 then list_drop (List.length runs - last) runs else runs
  in
  if runs = [] then
    Format.printf "no matching runs in %s@." (Obs.Ledger.path dir)
  else begin
    Format.printf "%-18s %-8s %-18s %-19s %9s %11s  %s@." "RUN" "TOOL"
      "SUBJECT" "WHEN" "WALL" "CACHE H/Q" "VERDICTS";
    List.iter
      (fun (r : Obs.Ledger.run) ->
        Format.printf "%-18s %-8s %-18s %-19s %8.2fs %5d/%-5d  %s@."
          r.Obs.Ledger.r_id r.r_tool (clip 18 r.r_subject) (fmt_ts r.r_ts)
          r.r_wall_s r.r_cache_hits
          (r.r_cache_hits + r.r_cache_misses)
          (verdict_summary r.r_asserts))
      runs
  end;
  if bad > 0 then
    Format.printf "(%d unparseable ledger line%s skipped)@." bad
      (if bad = 1 then "" else "s");
  0

let diff_runs ledger_dir ref_base ref_fresh =
  let dir = ledger_dir_of ledger_dir in
  let resolve r =
    match Obs.Ledger.find dir ~ref:r with
    | Some run -> run
    | None ->
        failwith
          (Printf.sprintf "no run matching %S in %s" r (Obs.Ledger.path dir))
  in
  let base = resolve ref_base in
  let fresh = resolve ref_fresh in
  Format.printf "base : %s  %s %s  (%s)@." base.Obs.Ledger.r_id
    base.Obs.Ledger.r_tool base.Obs.Ledger.r_subject
    (fmt_ts base.Obs.Ledger.r_ts);
  Format.printf "fresh: %s  %s %s  (%s)@." fresh.Obs.Ledger.r_id
    fresh.Obs.Ledger.r_tool fresh.Obs.Ledger.r_subject
    (fmt_ts fresh.Obs.Ledger.r_ts);
  if base.Obs.Ledger.r_config <> fresh.Obs.Ledger.r_config then
    Format.printf
      "note : configurations differ — flips below may be config-induced@.  \
       base : %s@.  fresh: %s@."
      base.Obs.Ledger.r_config fresh.Obs.Ledger.r_config;
  (* Verdict flips: every base assertion record must persist with the
     same verdict; disappearing or changing is a flip. *)
  let flips = ref 0 in
  List.iter
    (fun (a : Obs.Ledger.assert_record) ->
      match
        List.find_opt
          (fun (b : Obs.Ledger.assert_record) ->
            b.Obs.Ledger.a_name = a.Obs.Ledger.a_name)
          fresh.Obs.Ledger.r_asserts
      with
      | None ->
          incr flips;
          Format.printf "FLIP %-24s %s -> (missing)@." a.Obs.Ledger.a_name
            a.Obs.Ledger.a_verdict
      | Some b when b.Obs.Ledger.a_verdict <> a.Obs.Ledger.a_verdict ->
          incr flips;
          Format.printf "FLIP %-24s %s -> %s@." a.Obs.Ledger.a_name
            a.Obs.Ledger.a_verdict b.Obs.Ledger.a_verdict
      | Some _ -> ())
    base.Obs.Ledger.r_asserts;
  (* Timing: the same dotted-leaf ratio+floor gate as [bench diff],
     applied to the two ledger rows. *)
  let ratio, floor = Obs.Numdiff.thresholds () in
  let fresh_leaves = Obs.Numdiff.leaves (Obs.Ledger.json_of_run fresh) in
  let regressions = ref 0 in
  Format.printf "@.%-32s %12s %12s %9s@." "leaf" "base" "fresh" "ratio";
  List.iter
    (fun (path, bv) ->
      match Obs.Numdiff.gate path with
      | None -> ()
      | Some d -> (
          match List.assoc_opt path fresh_leaves with
          | None -> ()
          | Some fv ->
              let reg =
                Obs.Numdiff.regressed d ~ratio ~floor ~base:bv ~fresh:fv
              in
              if reg then incr regressions;
              Format.printf "%-32s %12.4f %12.4f %9s%s@." path bv fv
                (if bv = 0. then "-"
                 else Printf.sprintf "%.2fx" (fv /. bv))
                (if reg then "  REGRESSED" else "")))
    (Obs.Numdiff.leaves (Obs.Ledger.json_of_run base));
  if !flips = 0 && !regressions = 0 then begin
    Format.printf
      "@.OK: no verdict flips, no timing regressions (ratio %g, floor %gs)@."
      ratio floor;
    0
  end
  else begin
    Format.printf "@.%d verdict flip(s), %d timing regression(s)@." !flips
      !regressions;
    1
  end

let why dut_name assertion stage threshold max_depth timeout conflict_budget
    opt_level no_incremental cache_dir no_cache ledger_dir =
  let incremental = not no_incremental in
  let opt = Opt.level_of_int opt_level in
  let budget = budget_of timeout conflict_budget in
  let cache =
    match cache_of cache_dir no_cache with
    | Some c -> c
    | None ->
        failwith
          "why needs the verdict cache: give --cache-dir or set \
           AUTOCC_CACHE_DIR"
  in
  let dut =
    build_dut dut_name ~stage ~fix_m2:false ~fix_m3:false ~fix_c1:false
      ~fix_c2:false ~fix_c3:false ~full_flush:false
  in
  let ft = ft_for dut_name dut ~stage ~threshold in
  let property = ft.Autocc.Ft.property in
  let runs =
    match Obs.Ledger.resolve_dir ?explicit:ledger_dir () with
    | Some dir -> fst (Obs.Ledger.load dir)
    | None -> []
  in
  let print_run_row p_run =
    match
      List.find_opt
        (fun (r : Obs.Ledger.run) -> r.Obs.Ledger.r_id = p_run)
        runs
    with
    | Some r ->
        Format.printf "  producing run  : %s (%s %s, %s, wall %.2fs, cache %d/%d)@."
          r.Obs.Ledger.r_id r.r_tool r.r_subject (fmt_ts r.r_ts) r.r_wall_s
          r.r_cache_hits
          (r.r_cache_hits + r.r_cache_misses)
    | None ->
        Format.printf "  producing run  : %s (%s)@." p_run
          (if runs = [] then "no ledger loaded" else "not in the ledger")
  in
  (* Recompute exactly the (structural hash, key, config) triple the
     engine addressed the cache with, then peek — no counters touched. *)
  let audit title prop ~engine ~incremental =
    let dut_hash, key, config =
      Bmc.cache_fingerprint ~engine ~max_depth ~opt ~incremental ~budget prop
    in
    Format.printf "@.%s@." title;
    Format.printf "  structural hash: %s@." dut_hash;
    Format.printf "  config         : %s@." config;
    Format.printf "  cache key      : %s@." key;
    match Cache.peek cache key with
    | None ->
        Format.printf "  verdict        : (not cached)@.";
        false
    | Some (v, prov) ->
        Format.printf "  verdict        : %s@."
          (match v with
          | Cache.Bounded d -> Printf.sprintf "bounded proof to depth %d" d
          | Cache.Proved k -> Printf.sprintf "proved by %d-induction" k
          | Cache.Cex c ->
              Printf.sprintf "counterexample at depth %d" c.Cache.v_depth);
        (match prov with
        | None ->
            Format.printf
              "  provenance     : none recorded (pre-provenance store)@."
        | Some p ->
            Format.printf "  stored         : %s by run %s (engine %s)@."
              (fmt_ts p.Cache.p_ts) p.Cache.p_run p.Cache.p_engine;
            print_run_row p.Cache.p_run);
        true
  in
  let found =
    match assertion with
    | None ->
        (* The property-level entries analyze (engine "check") and prove
           (engine "prove") store; audit both unconditionally so the
           output says which one exists. *)
        let a =
          audit "property-level entry (engine check)" property ~engine:"check"
            ~incremental
        in
        let b =
          audit "property-level entry (engine prove)" property ~engine:"prove"
            ~incremental
        in
        a || b
    | Some name -> (
        match
          List.find_opt (fun (n, _) -> n = name) property.Bmc.asserts
        with
        | None ->
            failwith
              (Printf.sprintf "no assertion %S in the %s FT (have: %s)" name
                 dut_name
                 (String.concat ", " (List.map fst property.Bmc.asserts)))
        | Some (n, s) ->
            (* Per-assertion entries (campaign sweeps / the sharded
               engine) key the single-assertion sub-property, always on
               a persistent solver. *)
            let sub = { property with Bmc.asserts = [ (n, s) ] } in
            audit
              (Printf.sprintf "per-assertion entry %S" n)
              sub ~engine:"check" ~incremental:true)
  in
  if found then 0
  else begin
    Format.printf
      "@.No cached verdict under this configuration — run analyze, prove or \
       campaign with the same flags and this cache directory first.@.";
    1
  end

let profile trace_path svg =
  match Obs.Profile.of_file trace_path with
  | Result.Error msg -> failwith msg
  | Result.Ok p ->
      print_string (Obs.Profile.table p);
      (match svg with
      | None -> ()
      | Some path ->
          let oc = open_out path in
          Fun.protect
            ~finally:(fun () -> close_out_noerr oc)
            (fun () -> output_string oc (Obs.Profile.flamegraph_svg p));
          Format.printf "Flamegraph written to %s@." path);
      0

(* {1 Terms} *)

let dut_arg =
  Arg.(
    value
    & opt (some (enum (List.map (fun d -> (d, d)) known_duts))) None
    & info [ "dut" ] ~doc:"Bundled DUT to analyze: vscale, maple, aes, cva6, divider or leaky.")

let dut_arg_required =
  Arg.(
    required
    & opt (some (enum (List.map (fun d -> (d, d)) known_duts))) None
    & info [ "dut" ] ~doc:"DUT: vscale, maple, aes, cva6, divider or leaky.")

let verilog_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "verilog" ]
        ~doc:"Path to a SystemVerilog module to analyze instead of a bundled DUT.")

let stage_arg =
  Arg.(value & opt int 0 & info [ "stage" ] ~doc:"Vscale refinement stage (0-5).")

let threshold_arg =
  Arg.(value & opt int 2 & info [ "threshold" ] ~doc:"Transfer-period length in cycles.")

let max_depth_arg =
  Arg.(value & opt int 12 & info [ "max-depth" ] ~doc:"BMC unrolling bound in cycles.")

(* A non-negative int converter: --jobs/-portfolio semantics give 0 a
   meaning ("auto" / "off"), but negative values used to fall through to
   the domain-pool layer — reject them here with a proper cmdliner
   error. *)
let nonneg_int what =
  let parse s =
    match Arg.conv_parser Arg.int s with
    | Ok n when n >= 0 -> Ok n
    | Ok n ->
        Error (`Msg (Printf.sprintf "%s must be >= 0 (got %d)" what n))
    | Error _ as e -> e
  in
  Arg.conv (parse, Arg.conv_printer Arg.int)

(* Strictly-positive converters for the resource budgets: a zero or
   negative budget would make every run Unknown at depth 0, which is
   never what the user meant — reject it at parse time like --jobs
   does. *)
let pos_float what =
  let parse s =
    match Arg.conv_parser Arg.float s with
    | Ok x when x > 0. -> Ok x
    | Ok x -> Error (`Msg (Printf.sprintf "%s must be > 0 (got %g)" what x))
    | Error _ as e -> e
  in
  Arg.conv (parse, Arg.conv_printer Arg.float)

let pos_int what =
  let parse s =
    match Arg.conv_parser Arg.int s with
    | Ok n when n > 0 -> Ok n
    | Ok n -> Error (`Msg (Printf.sprintf "%s must be > 0 (got %d)" what n))
    | Error _ as e -> e
  in
  Arg.conv (parse, Arg.conv_printer Arg.int)

let timeout_arg =
  Arg.(
    value
    & opt (some (pos_float "--timeout")) None
    & info [ "timeout" ] ~docv:"SECONDS"
        ~doc:
          "Wall-clock budget per solver run. Exhaustion yields an Unknown \
           verdict (with the deepest fully-checked depth), never a wrong \
           one.")

let conflict_budget_arg =
  Arg.(
    value
    & opt (some (pos_int "--conflict-budget")) None
    & info [ "conflict-budget" ] ~docv:"N"
        ~doc:
          "Conflict budget per solver run; exhaustion yields an Unknown \
           verdict.")

let retries_arg =
  Arg.(
    value
    & opt (nonneg_int "--retries") 0
    & info [ "retries" ] ~docv:"N"
        ~doc:
          "Retry inconclusive (budget/fault) verdicts up to $(docv) times \
           with escalated budgets, alternate solver configurations and \
           capped exponential backoff. 0 (the default) disables retries.")

let jobs_arg =
  Arg.(
    value
    & opt (nonneg_int "--jobs") 1
    & info [ "jobs"; "j" ]
        ~doc:
          "Worker domains for parallel verification: assertions are sharded \
           across this many domains. 1 (the default) runs the sequential \
           engine; 0 uses one domain per core.")

let portfolio_arg =
  Arg.(
    value
    & opt (nonneg_int "--portfolio") 0
    & info [ "portfolio" ]
        ~doc:
          "Race this many solver configurations on the whole property instead \
           of sharding assertions; the first answer wins. Implies the parallel \
           engine.")

let opt_arg =
  let level =
    let parse s =
      match Arg.conv_parser Arg.int s with
      | Ok n when n >= 0 && n <= 2 -> Ok n
      | Ok n -> Error (`Msg (Printf.sprintf "-O expects 0, 1 or 2 (got %d)" n))
      | Error _ as e -> e
    in
    Arg.conv (parse, Arg.conv_printer Arg.int)
  in
  Arg.(
    value & opt level 2
    & info [ "O"; "opt" ]
        ~doc:
          "Netlist-optimization level applied to the miter before \
           bit-blasting: 0 disables, 1 runs strash/rewrites/cone-of-influence, \
           2 (the default) adds SAT sweeping and register correspondence. \
           Verdicts and counterexample depths are unaffected.")

let no_incremental_arg =
  Arg.(
    value & flag
    & info [ "no-incremental" ]
        ~doc:
          "Disable incremental (persistent-solver) BMC and re-blast every \
           depth on a fresh solver instead. Slower, but an independent \
           search trajectory — the differential oracle the incremental \
           engine is validated against. Verdicts and counterexample depths \
           are identical either way.")

let flag name doc = Arg.(value & flag & info [ name ] ~doc)

let no_symmetric_arg =
  Arg.(
    value & flag
    & info [ "no-symmetric" ]
        ~doc:
          "Disable the symmetric-universe template encoding and blast both \
           universes of the miter independently. Slower template \
           construction, identical verdicts and counterexample depths — the \
           differential oracle the symmetric encoder is validated against.")

let cache_dir_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "cache-dir" ] ~docv:"DIR"
        ~env:(Cmd.Env.info "AUTOCC_CACHE_DIR")
        ~doc:
          "Persist conclusive verdicts to $(docv)/verdicts.jsonl, keyed by a \
           canonical structural hash of each property cone plus the engine \
           configuration. A later run (of this or any command) re-verifies \
           only cones that actually changed; cached counterexamples are \
           replayed on the simulator before being trusted. Corrupted \
           entries are rejected and recomputed.")

let no_cache_arg =
  Arg.(
    value & flag
    & info [ "no-cache" ]
        ~doc:"Ignore --cache-dir / AUTOCC_CACHE_DIR and solve everything fresh.")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Write a Chrome/Perfetto trace-event JSON profile of the run to \
           $(docv); load it at ui.perfetto.dev or chrome://tracing.")

let log_json_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "log-json" ] ~docv:"FILE"
        ~doc:"Write structured logs to $(docv), one JSON object per line.")

let log_level_arg =
  Arg.(
    value & opt string "info"
    & info [ "log-level" ] ~docv:"LEVEL"
        ~doc:"Structured-log verbosity: error, warn, info or debug.")

let metrics_file_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-file" ] ~docv:"FILE"
        ~doc:
          "Expose the metric registry as a Prometheus text-format snapshot at \
           $(docv), atomically rewritten every couple of seconds while the \
           command runs (point a node_exporter textfile collector or a watch \
           at it). Implies metrics collection.")

let analyze_cmd =
  let term =
    Term.(
      const analyze $ dut_arg $ verilog_arg
      $ Arg.(
          value
          & opt (some string) None
          & info [ "top" ] ~doc:"Top module of a multi-module Verilog source.")
      $ Arg.(
          value
          & opt string ""
          & info [ "blackbox" ]
              ~doc:"Comma-separated submodule boundaries/instances to blackbox.")
      $ stage_arg $ threshold_arg $ max_depth_arg $ jobs_arg $ portfolio_arg
      $ timeout_arg $ conflict_budget_arg $ retries_arg $ opt_arg
      $ no_incremental_arg $ no_symmetric_arg $ cache_dir_arg $ no_cache_arg
      $ flag "fix-m2" "Apply the MAPLE M2 fix."
      $ flag "fix-m3" "Apply the MAPLE M3 fix."
      $ flag "fix-c1" "Apply the CVA6 C1 fix."
      $ flag "fix-c2" "Apply the CVA6 C2 fix."
      $ flag "fix-c3" "Apply the CVA6 C3 fix."
      $ flag "full-flush" "Use the CVA6 full-flush fence.t instead of microreset."
      $ flag "verbose" "Print per-depth progress."
      $ Arg.(
          value
          & opt (some string) None
          & info [ "vcd" ] ~doc:"Write the counterexample waveform to this VCD file.")
      $ trace_arg $ log_json_arg $ log_level_arg $ metrics_file_arg)
  in
  Cmd.v (Cmd.info "analyze" ~doc:"Generate the AutoCC FT for a DUT and search for covert channels.") term

let prove_cmd =
  let term =
    Term.(
      const prove $ dut_arg $ verilog_arg
      $ Arg.(
          value
          & opt (some string) None
          & info [ "top" ] ~doc:"Top module of a multi-module Verilog source.")
      $ stage_arg $ threshold_arg $ max_depth_arg $ jobs_arg $ timeout_arg
      $ conflict_budget_arg $ retries_arg $ opt_arg $ no_incremental_arg
      $ no_symmetric_arg $ cache_dir_arg $ no_cache_arg
      $ flag "verbose" "Print per-depth progress."
      $ Arg.(
          value
          & opt (some string) None
          & info [ "vcd" ]
              ~doc:"Write the refutation waveform to this VCD file.")
      $ trace_arg $ log_json_arg $ log_level_arg $ metrics_file_arg)
  in
  Cmd.v
    (Cmd.info "prove"
       ~doc:
         "Attempt an unbounded proof of non-interference by k-induction (the \
          paper's full proof on the AES accelerator).")
    term

let exploit_cmd =
  let secret =
    Arg.(value & opt int 0xdeadbeef & info [ "secret" ] ~doc:"32-bit secret to leak.")
  in
  let term = Term.(const exploit $ secret $ flag "fixed" "Run against the fixed RTL.") in
  Cmd.v (Cmd.info "exploit" ~doc:"Run the Listing 2 covert-channel exploit at system level.") term

let synthesize_cmd =
  let algorithm =
    Arg.(
      value
      & opt (enum [ ("incremental", "incremental"); ("decremental", "decremental") ]) "incremental"
      & info [ "algorithm" ] ~doc:"Flush-construction algorithm (incremental or decremental).")
  in
  let term = Term.(const synthesize $ algorithm $ max_depth_arg) in
  Cmd.v (Cmd.info "synthesize" ~doc:"Construct a minimal flush set (Sec. 3.5 algorithms).") term

let stats_cmd =
  let dut =
    Arg.(
      value
      & opt (enum (List.map (fun d -> (d, d)) known_duts)) "vscale"
      & info [ "dut" ]
          ~doc:"DUT for the instrumented run (default vscale).")
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Print size statistics of the bundled DUTs, then run an \
          instrumented BMC search and print the pipeline telemetry summary \
          (solver conflict/propagation counts, CNF sizes, per-depth \
          timings).")
    Term.(
      const stats $ dut $ max_depth_arg $ jobs_arg $ opt_arg $ trace_arg
      $ log_json_arg $ log_level_arg $ metrics_file_arg)

let campaign_cmd =
  let duts =
    Arg.(
      value
      & opt (list (enum (List.map (fun d -> (d, d)) known_duts))) [ "leaky" ]
      & info [ "duts"; "dut" ] ~docv:"DUT,..."
          ~doc:
            "Comma-separated DUTs to sweep (vscale, maple, aes, cva6, divider, \
             leaky).")
  in
  let out_dir =
    Arg.(
      value & opt string "autocc_campaign"
      & info [ "out" ] ~docv:"DIR"
          ~doc:
            "Directory for the campaign artifacts: campaign.json, one \
             channel_*.json per deduplicated channel, and a self-contained \
             report.html.")
  in
  let resume =
    Arg.(
      value & flag
      & info [ "resume" ]
          ~doc:
            "Reuse conclusive entries from an existing campaign directory: an \
             entry whose persisted record is done with zero unknowns and \
             whose channel artifacts still validate is not re-solved. \
             Entries that were failed, inconclusive, or interrupted are \
             recomputed.")
  in
  Cmd.v
    (Cmd.info "campaign"
       ~doc:
         "Sweep DUT configurations with a per-assertion CEX search, then \
          slice, minimize and cluster every counterexample into named covert \
          channels (Table-1 style), writing one JSON artifact per channel \
          and an HTML report. The index and report are checkpointed after \
          every entry, so an interrupted campaign can be finished with \
          --resume.")
    Term.(
      const campaign $ duts $ threshold_arg $ max_depth_arg $ timeout_arg
      $ conflict_budget_arg $ retries_arg $ resume $ opt_arg
      $ no_incremental_arg $ no_symmetric_arg $ cache_dir_arg $ no_cache_arg
      $ out_dir $ trace_arg $ log_json_arg $ log_level_arg $ metrics_file_arg)

let top_cmd =
  let out_dir =
    Arg.(
      value & opt string "autocc_campaign"
      & info [ "out" ] ~docv:"DIR"
          ~doc:"Campaign directory to attach to (same as campaign --out).")
  in
  let once =
    Arg.(
      value & flag
      & info [ "once" ]
          ~doc:"Render a single frame (no screen clearing) and exit.")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "Print one machine-readable autocc.top/1 JSON snapshot instead of \
             the table and exit (implies --once).")
  in
  let interval =
    Arg.(
      value
      & opt (pos_float "--interval") 1.0
      & info [ "interval" ] ~docv:"SECONDS" ~doc:"Refresh period.")
  in
  let duration =
    Arg.(
      value
      & opt (some (pos_float "--duration")) None
      & info [ "duration" ] ~docv:"SECONDS"
          ~doc:"Exit after $(docv) even if the campaign is still running.")
  in
  let stale =
    Arg.(
      value
      & opt (pos_float "--stale") 10.0
      & info [ "stale" ] ~docv:"SECONDS"
          ~doc:
            "Flag an unfinished entry whose last heartbeat is older than \
             $(docv) as SLOW (owner process alive) or CRASHED (owner gone).")
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "Live cockpit for a running (or finished) campaign: tails \
          DIR/events.jsonl — no IPC with the campaign process — and renders \
          per-entry depth, verdict, cache hit ratio, solver conflict rate \
          and an ETA, annotating stalled workers from DIR/heartbeats.json. \
          Exits when the campaign completes.")
    Term.(const top $ out_dir $ once $ json $ interval $ duration $ stale)

let export_cmd =
  let dir =
    Arg.(value & opt string "autocc_flow" & info [ "dir" ] ~doc:"Output directory.")
  in
  let depth =
    Arg.(value & opt int 25 & info [ "depth" ] ~doc:"BMC depth in the SBY config.")
  in
  let arch_regs =
    Arg.(
      value & opt string ""
      & info [ "arch-regs" ] ~doc:"Comma-separated registers for architectural_state_eq.")
  in
  let term = Term.(const export $ dut_arg_required $ dir $ threshold_arg $ depth $ arch_regs) in
  Cmd.v
    (Cmd.info "export"
       ~doc:"Emit the DUT and its AutoCC testbench as SystemVerilog + SBY project.")
    term

let ledger_dir_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "ledger-dir" ] ~docv:"DIR"
        ~env:(Cmd.Env.info "AUTOCC_LEDGER_DIR")
        ~doc:
          "Directory holding the runs.jsonl run ledger. Defaults to \
           AUTOCC_LEDGER_DIR, then AUTOCC_CACHE_DIR — the ledger lives \
           beside the verdict cache whose provenance records cite it.")

let history_cmd =
  let tool =
    Arg.(
      value
      & opt (some string) None
      & info [ "tool" ] ~docv:"TOOL"
          ~doc:"Only runs recorded by $(docv): analyze, prove, campaign or bench.")
  in
  let subject =
    Arg.(
      value
      & opt (some string) None
      & info [ "subject" ] ~docv:"NAME"
          ~doc:"Only runs whose subject (DUT, DUT list or bench subcommand) is $(docv).")
  in
  let last =
    Arg.(
      value
      & opt (nonneg_int "--last") 0
      & info [ "last" ] ~docv:"N"
          ~doc:"Only the newest $(docv) matching runs (0, the default, lists all).")
  in
  Cmd.v
    (Cmd.info "history"
       ~doc:
         "List the run ledger (runs.jsonl): one row per recorded \
          analyze/prove/campaign/bench invocation with its config \
          fingerprint, wall/CPU time, cache hit ratio and verdict \
          roll-up. Rows are addressable by id prefix or ~N (Nth newest) \
          in diff-runs.")
    Term.(const history $ ledger_dir_arg $ tool $ subject $ last)

let diff_runs_cmd =
  let base =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"BASE"
          ~doc:"Base run: ~N (Nth newest, ~1 = latest) or a run-id prefix.")
  in
  let fresh =
    Arg.(
      required
      & pos 1 (some string) None
      & info [] ~docv:"FRESH" ~doc:"Run to compare against BASE.")
  in
  Cmd.v
    (Cmd.info "diff-runs"
       ~doc:
         "Compare two ledger rows: report per-assertion verdict flips and \
          gate duration leaves with the same ratio+floor machinery as \
          bench diff (AUTOCC_DIFF_RATIO / AUTOCC_DIFF_FLOOR_S). Exits 1 \
          on any flip or timing regression.")
    Term.(const diff_runs $ ledger_dir_arg $ base $ fresh)

let why_cmd =
  let assertion =
    Arg.(
      value
      & opt (some string) None
      & info [ "assert" ] ~docv:"NAME"
          ~doc:
            "Audit the per-assertion cache entry for $(docv) (the shape \
             campaign sweeps store) instead of the property-level entry.")
  in
  Cmd.v
    (Cmd.info "why"
       ~doc:
         "Audit a cached verdict: recompute the structural hash, config \
          fingerprint and cache key the engine would use for this DUT under \
          these flags, peek the verdict cache without touching its \
          counters, and resolve the stored provenance back to the ledger \
          row of the run that earned it. Exits 1 when nothing is cached \
          under that key.")
    Term.(
      const why $ dut_arg_required $ assertion $ stage_arg $ threshold_arg
      $ max_depth_arg $ timeout_arg $ conflict_budget_arg $ opt_arg
      $ no_incremental_arg $ cache_dir_arg $ no_cache_arg $ ledger_dir_arg)

let profile_cmd =
  let trace =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"TRACE"
          ~doc:"Chrome trace-event JSON written by --trace.")
  in
  let svg =
    Arg.(
      value
      & opt (some string) None
      & info [ "svg" ] ~docv:"FILE"
          ~doc:"Also write a self-contained flamegraph SVG to $(docv).")
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Fold a recorded --trace profile into a merged span tree: total/self \
          time and call counts per span, self time per category (sat, cnf, \
          opt, bmc, cache, explain, ...), an attributed-vs-wall coverage \
          headline, and optionally a flamegraph SVG.")
    Term.(const profile $ trace $ svg)

(* {1 serve / submit / status / worker} *)

let serve_dir_arg =
  Arg.(
    value & opt string "autocc_serve"
    & info [ "dir" ] ~docv:"DIR"
        ~doc:
          "Service directory: serve.sock, the persistent job queue \
           (queue.json), per-job specs/heartbeats/results, worker logs, \
           events.jsonl and runs.jsonl all live here.")

let serve dir workers lease_s max_crashes shed retries cache_dir no_cache
    metrics_file quiet =
  let cfg =
    {
      (Serve.Daemon.default ~dir ~exe:Sys.executable_name) with
      Serve.Daemon.d_workers = workers;
      d_lease_s = lease_s;
      d_max_crashes = max_crashes;
      d_shed = shed;
      d_retry =
        (match retry_of retries with Some r -> r | None -> Retry.default);
      d_cache_dir = (if no_cache then None else cache_dir);
      d_metrics_file = metrics_file;
      d_quiet = quiet;
    }
  in
  Serve.Daemon.run cfg

let worker dir job attempt = Serve.Worker.run ~dir ~job_id:job ~attempt

let jfield_str j name =
  match Obs.Json.member name j with Some (Obs.Json.Str s) -> s | _ -> ""

let jfield_int j name =
  match Obs.Json.member name j with Some (Obs.Json.Int i) -> i | _ -> 0

let submit dir duts engine max_depth threshold wait =
  let submitted =
    List.map
      (fun d ->
        let spec =
          {
            Serve.Machine.sp_dut = d;
            sp_engine = engine;
            sp_depth = max_depth;
            sp_threshold = threshold;
          }
        in
        match Serve.Client.submit ~dir spec with
        | Ok id ->
            Format.printf "submitted %s (%s)@." id d;
            Ok id
        | Error msg ->
            Format.eprintf "autocc submit: %s: %s@." d msg;
            Error ())
      duts
  in
  let rc = if List.exists Result.is_error submitted then 1 else 0 in
  if not wait then rc
  else
    List.fold_left
      (fun rc r ->
        match r with
        | Error () -> rc
        | Ok id -> (
            match Serve.Client.wait ~dir id with
            | Error msg ->
                Format.eprintf "autocc submit: wait %s: %s@." id msg;
                1
            | Ok resp ->
                let job =
                  Option.value ~default:(Obs.Json.Obj [])
                    (Obs.Json.member "job" resp)
                in
                Format.printf "%s %s: %s (depth %d, %.2fs)@." id
                  (jfield_str job "dut") (jfield_str job "verdict")
                  (jfield_int job "depth")
                  (float_of_int (jfield_int job "wall_ms") /. 1000.);
                rc))
      rc submitted

let status dir as_json drain =
  if drain then (
    match Serve.Client.request ~dir (Serve.Proto.json_of_request Serve.Proto.Drain) with
    | Ok _ ->
        Format.printf "drain requested@.";
        0
    | Error msg ->
        Format.eprintf "autocc status: %s@." msg;
        1)
  else
    match Serve.Client.status ~dir with
    | Error msg ->
        Format.eprintf "autocc status: %s@." msg;
        1
    | Ok resp ->
        if as_json then (
          print_endline (Obs.Json.to_string resp);
          0)
        else begin
          let jobs =
            match Obs.Json.member "jobs" resp with
            | Some (Obs.Json.List l) -> l
            | _ -> []
          in
          Format.printf "%-6s %-10s %-7s %-12s %-8s %s@." "JOB" "DUT" "ENGINE"
            "STATE" "CRASHES" "VERDICT";
          List.iter
            (fun j ->
              Format.printf "%-6s %-10s %-7s %-12s %-8d %s@."
                (jfield_str j "id") (jfield_str j "dut")
                (jfield_str j "engine") (jfield_str j "state")
                (jfield_int j "crashes") (jfield_str j "verdict"))
            jobs;
          (match Obs.Json.member "draining" resp with
          | Some (Obs.Json.Bool true) -> Format.printf "(draining)@."
          | _ -> ());
          0
        end

let serve_cmd =
  let workers =
    Arg.(
      value
      & opt (nonneg_int "--workers") 2
      & info [ "workers" ] ~docv:"N"
          ~doc:
            "Worker pool size. 0 accepts and persists submissions but never \
             dispatches — queue-only mode.")
  in
  let lease =
    Arg.(
      value
      & opt (pos_float "--lease") 10.0
      & info [ "lease" ] ~docv:"SECONDS"
          ~doc:
            "Heartbeat staleness horizon: a leased worker whose last renewal \
             is older than $(docv) is presumed hung, SIGKILLed, and its job \
             redelivered.")
  in
  let max_crashes =
    Arg.(
      value
      & opt (pos_int "--max-crashes") 3
      & info [ "max-crashes" ] ~docv:"N"
          ~doc:
            "Crashes before a job is quarantined as poison with the terminal \
             verdict unknown:worker_crashed (which can never flip a \
             conclusive verdict).")
  in
  let shed =
    Arg.(
      value
      & opt (pos_int "--shed") 64
      & info [ "shed" ] ~docv:"N"
          ~doc:
            "Live-job watermark past which submissions are refused with \
             \"overloaded\" instead of growing the queue without bound.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the crash-isolated verification service: accept submissions on \
          DIR/serve.sock, dispatch each job to a disposable worker process \
          under a heartbeat lease, redeliver crashed jobs with exponential \
          backoff, quarantine poison jobs, and drain gracefully on \
          SIGTERM/SIGINT (the persisted queue survives a restart).")
    Term.(
      const serve $ serve_dir_arg $ workers $ lease $ max_crashes $ shed
      $ retries_arg $ cache_dir_arg $ no_cache_arg $ metrics_file_arg
      $ flag "quiet" "Suppress per-event lifecycle lines.")

let submit_cmd =
  let duts =
    Arg.(
      non_empty
      & pos_all (enum (List.map (fun d -> (d, d)) known_duts)) []
      & info [] ~docv:"DUT"
          ~doc:"DUTs to submit, one job each (vscale, maple, aes, cva6, \
                divider, leaky).")
  in
  let engine =
    Arg.(
      value
      & opt (enum [ ("check", "check"); ("prove", "prove") ]) "check"
      & info [ "engine" ]
          ~doc:"Verification engine: check (BMC) or prove (k-induction).")
  in
  Cmd.v
    (Cmd.info "submit"
       ~doc:
         "Submit verification jobs to a running autocc serve daemon; with \
          --wait, block until each is terminal and print its verdict.")
    Term.(
      const submit $ serve_dir_arg $ duts $ engine $ max_depth_arg
      $ threshold_arg
      $ flag "wait" "Block until each submitted job is terminal.")

let status_cmd =
  Cmd.v
    (Cmd.info "status"
       ~doc:
         "Show the job table of a running autocc serve daemon (state, crash \
          count and verdict per job).")
    Term.(
      const status $ serve_dir_arg
      $ flag "json" "Print the raw autocc.serve/1 status response."
      $ flag "drain"
          "Ask the daemon to drain (same effect as SIGTERM) instead of \
           printing status.")

let worker_cmd =
  let dir =
    Arg.(
      required
      & opt (some string) None
      & info [ "dir" ] ~docv:"DIR" ~doc:"Service directory.")
  in
  let job =
    Arg.(
      required
      & opt (some string) None
      & info [ "job" ] ~docv:"ID" ~doc:"Job id to execute.")
  in
  let attempt =
    Arg.(
      value
      & opt (nonneg_int "--attempt") 0
      & info [ "attempt" ] ~docv:"N"
          ~doc:"Delivery attempt; > 0 rotates the fault-injection seed.")
  in
  Cmd.v
    (Cmd.info "worker"
       ~doc:
         "Execute one leased service job and deposit its result (spawned by \
          autocc serve; not intended for interactive use).")
    Term.(const worker $ dir $ job $ attempt)

let () =
  (* Test builds inject deterministic faults via AUTOCC_FAULT; a no-op
     (one atomic load per probe) when the variable is unset. *)
  Fault.arm_from_env ();
  (* AUTOCC_WATCHDOG tunes (or disarms) the solver-health watchdog:
     "every=N,window=N,patience=N,min_cps=F,min_lps=F,rebudget=0|1". *)
  Obs.Watchdog.arm_from_env ();
  let info =
    Cmd.info "autocc" ~version:"1.0"
      ~doc:"Automatic discovery of covert channels in time-shared hardware."
  in
  let cmd =
    Cmd.group info
      [
        analyze_cmd;
        prove_cmd;
        exploit_cmd;
        synthesize_cmd;
        export_cmd;
        stats_cmd;
        campaign_cmd;
        serve_cmd;
        submit_cmd;
        status_cmd;
        worker_cmd;
        top_cmd;
        history_cmd;
        diff_runs_cmd;
        why_cmd;
        profile_cmd;
      ]
  in
  (* Operational errors (unwritable --out, missing file, unknown DUT)
     exit with a one-line diagnostic, not an uncaught exception and a
     backtrace. *)
  exit
    (* [catch:false]: cmdliner would otherwise intercept exceptions as
       "internal error" (exit 125) before the one-line diagnostics below. *)
    (try Cmd.eval' ~catch:false cmd with
    | Failure msg | Sys_error msg ->
        Format.eprintf "autocc: %s@." msg;
        1
    | Unix.Unix_error (err, fn, arg) ->
        Format.eprintf "autocc: %s: %s%s@." fn (Unix.error_message err)
          (if arg = "" then "" else " (" ^ arg ^ ")");
        1)

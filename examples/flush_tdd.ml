(* Test-driven development of a flush mechanism (Sec. 3.5): use AutoCC
   counterexamples to construct the set of microarchitectural registers
   that must be flushed for full temporal partitioning.

   Algorithm 1 grows the flush set from nothing, adding the register that
   each counterexample identifies; Algorithm 2 starts from a full flush
   and removes registers whose flush is unnecessary.

   Run with: dune exec examples/flush_tdd.exe *)

module Signal = Rtl.Signal
open Signal

(* A small engine with three hidden registers: two leak (a stashed value
   and a mode flag that changes response timing), one is harmless. *)
let engine () =
  let din = input "din" 8 in
  let cap = input "cap" 1 in
  let set_mode = input "set_mode" 1 in
  let query = input "query" 8 in
  let stash = reg "stash" 8 in
  let mode = reg "mode" 1 in
  let heartbeat = reg "heartbeat" 4 in
  reg_set_next stash (mux2 cap din stash);
  reg_set_next mode (mux2 set_mode (bit din 0) mode);
  reg_set_next heartbeat (heartbeat +: one 4);
  (* Hit reporting is only enabled in the right mode, so both the stash
     contents and the mode flag are hidden state that can leak. *)
  let hit = query ==: stash in
  Rtl.Circuit.create ~name:"engine"
    ~outputs:[ ("hit", mux2 mode hit gnd); ("beat", bit heartbeat 3) ]
    ()

let pp_steps steps =
  List.iter
    (fun step ->
      match step.Autocc.Synthesis.step_result with
      | `Cex (culprit, depth) ->
          Format.printf "  flush {%s}: CEX at depth %d -> add/keep %s@."
            (String.concat ", " step.Autocc.Synthesis.step_flush)
            (depth + 1) culprit
      | `Proof depth ->
          Format.printf "  flush {%s}: bounded proof to depth %d@."
            (String.concat ", " step.Autocc.Synthesis.step_flush)
            (depth + 1)
      | `Unknown reason ->
          Format.printf "  flush {%s}: inconclusive (%s)@."
            (String.concat ", " step.Autocc.Synthesis.step_flush)
            reason)
    steps

let () =
  let dut = engine () in
  Format.printf "Engine: %a@.@." Rtl.Circuit.pp_stats dut;

  Format.printf "Algorithm 1 — incremental flush construction:@.";
  let r1 =
    Autocc.Synthesis.incremental ~max_depth:10 ~threshold:2
      ~candidates:[ "stash"; "mode"; "heartbeat" ]
      dut
  in
  pp_steps r1.Autocc.Synthesis.steps;
  Format.printf "  => flush set: {%s} (proved: %b)@.@."
    (String.concat ", " r1.Autocc.Synthesis.flush_set)
    r1.Autocc.Synthesis.proved;

  Format.printf "Algorithm 2 — decremental flush minimization:@.";
  let r2 =
    Autocc.Synthesis.decremental ~max_depth:10 ~threshold:2
      ~candidates:[ "heartbeat"; "stash"; "mode" ]
      dut
  in
  pp_steps r2.Autocc.Synthesis.steps;
  Format.printf "  => minimal flush set: {%s} (proved: %b)@."
    (String.concat ", " r2.Autocc.Synthesis.flush_set)
    r2.Autocc.Synthesis.proved

(* Exporting the AutoCC flow for an external FPV engine.

   The paper's tool generates the FPV testbench as SystemVerilog plus the
   backend command files (JasperGold TCL or SBY configuration). This
   example reproduces that output for the MAPLE engine: the DUT itself is
   rendered from the hardware IR, the two-universe wrapper carries the
   Listing 1 properties in SVA, and an SBY project file ties them
   together — ready for `sby -f maple.sby` on a machine with the
   open-source YosysHQ toolchain.

   Run with: dune exec examples/sby_export.exe [output-dir] *)

let () =
  let dir = if Array.length Sys.argv > 1 then Sys.argv.(1) else "autocc_flow" in
  let dut = Duts.Maple.create () in
  Autocc.Sva.write_flow ~dir ~threshold:4
    ~arch_regs:[ "base"; "tlb_en" ] (* a deliberate mistake: see below *)
    dut;
  Format.printf "Exported to %s/: maple.sv, ft_maple.sv, maple.sby@.@." dir;
  Format.printf
    "Note the arch_regs above declare MAPLE's base/tlb_en registers as\n\
     OS-managed — which hides M2 and M3! Running the same configuration\n\
     through the built-in engine makes the overconstraint visible:@.";
  let check arch_regs =
    let ft =
      Autocc.Ft.generate ~threshold:2 ~arch_regs
        ~flush_done:(Duts.Maple.flush_done ~require_outbuf_empty:true ())
        dut
    in
    match Autocc.Ft.check ~max_depth:10 ft with
    | Bmc.Cex (cex, _) ->
        Format.printf "  arch_regs=[%s]: CEX %s@."
          (String.concat ";" arch_regs)
          (Autocc.Report.summary ft cex)
    | Bmc.Bounded_proof stats ->
        Format.printf "  arch_regs=[%s]: proof to depth %d@."
          (String.concat ";" arch_regs)
          stats.Bmc.depth_reached
    | Bmc.Unknown (reason, _) ->
        Format.printf "  arch_regs=[%s]: inconclusive (%s)@."
          (String.concat ";" arch_regs)
          (Bmc.unknown_reason_to_string reason)
  in
  check [ "base"; "tlb_en" ];
  check [];
  Format.printf
    "@.The empty refinement finds the M2/M3 channels; declaring the\n\
     configuration registers architectural assumes the OS swaps them —\n\
     exactly the judgement call Sec. 4 walks through. The exported SVA\n\
     wrapper carries whatever refinement you chose.@."

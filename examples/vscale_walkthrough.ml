(* The Vscale step-by-step use case of Sec. 4.1 / Appendix A.5.1:
   generate the default FT for the core, then iteratively refine the
   architectural-state definition as counterexamples are found, ending
   with a bounded proof — the workflow that produces Table 2.

   Run with: dune exec examples/vscale_walkthrough.exe *)

let () =
  let dut = Duts.Vscale.create () in
  Format.printf "Vscale core: %a@.@." Rtl.Circuit.pp_stats dut;
  Format.printf
    "Refinement walk (each CEX tells us which state the OS is expected to handle):@.@.";
  List.iter
    (fun stage ->
      let t0 = Unix.gettimeofday () in
      let ft = Duts.Vscale.ft_for_stage stage dut in
      let elapsed () = Unix.gettimeofday () -. t0 in
      match Autocc.Ft.check ~max_depth:10 ft with
      | Bmc.Cex (cex, _) ->
          Format.printf "%-48s CEX  depth %2d  %6.2fs  %s@."
            (Duts.Vscale.stage_name stage)
            (cex.Bmc.cex_depth + 1) (elapsed ())
            (Autocc.Report.summary ft cex)
      | Bmc.Bounded_proof stats ->
          Format.printf "%-48s PROOF to depth %d  %6.2fs@."
            (Duts.Vscale.stage_name stage)
            (stats.Bmc.depth_reached + 1)
            (elapsed ())
      | Bmc.Unknown (reason, _) ->
          Format.printf "%-48s UNKNOWN (%s)  %6.2fs@."
            (Duts.Vscale.stage_name stage)
            (Bmc.unknown_reason_to_string reason)
            (elapsed ()))
    Duts.Vscale.stages;
  Format.printf
    "@.The final stage treats the register file, CSRs, pipeline registers and@.\
     interrupt state as OS-managed architectural state; with everything else@.\
     explored freely, no observable execution difference remains.@."

(* The paper's primary workflow (Sec. 3.3): point the tool at an RTL
   module and get an FPV testbench — no knowledge of the design's
   internals required. Here the input really is SystemVerilog source
   (examples/sample_dut.sv): it is parsed and elaborated into the
   hardware IR, the //AutoCC Common annotation and the AutoSVA-style
   transaction naming are honoured, and the generated testbench finds the
   design's covert channels.

   Run with: dune exec examples/from_verilog.exe *)

let source_path () =
  (* Works both from the repository root and from the examples dir. *)
  List.find Sys.file_exists
    [ "examples/sample_dut.sv"; "sample_dut.sv"; "../examples/sample_dut.sv" ]

let () =
  let path = source_path () in
  Format.printf "Parsing %s ...@." path;
  let dut = Frontend.Elaborate.circuit_of_file path in
  Format.printf "Elaborated: %a@." Rtl.Circuit.pp_stats dut;
  Format.printf "Common inputs (from //AutoCC Common): %s@."
    (String.concat ", " (Rtl.Circuit.common dut));
  List.iter
    (fun tx ->
      Format.printf "Inferred transaction %s: valid=%s payloads=%s@."
        tx.Rtl.Circuit.tx_name tx.Rtl.Circuit.valid
        (String.concat "," tx.Rtl.Circuit.payloads))
    (Rtl.Circuit.in_tx dut @ Rtl.Circuit.out_tx dut);
  Format.printf "@.Generating the FPV testbench and searching...@.";
  let rec refine round arch_regs =
    let ft = Autocc.Ft.generate ~threshold:2 ~arch_regs dut in
    match Autocc.Ft.check ~max_depth:12 ft with
    | Bmc.Cex (cex, stats) ->
        Format.printf "@.[round %d] CEX in %.2fs: %s@." round stats.Bmc.solve_time
          (Autocc.Report.summary ft cex);
        (match Autocc.Report.first_divergence ft cex with
        | (culprit, cycle) :: _ ->
            Format.printf "  root cause: %s (diverges at cycle %d)@." culprit cycle;
            if round < 4 && not (List.mem culprit arch_regs) then begin
              Format.printf "  -> treating %s as state the designer must flush;@." culprit;
              Format.printf "     suppressing it to continue the search...@.";
              refine (round + 1) (culprit :: arch_regs)
            end
        | [] -> ())
    | Bmc.Bounded_proof stats ->
        Format.printf
          "@.[round %d] no further channels up to depth %d (suppressed: %s)@."
          round stats.Bmc.depth_reached
          (String.concat ", " arch_regs)
    | Bmc.Unknown (reason, stats) ->
        Format.printf "@.[round %d] inconclusive (%s), clean to depth %d@."
          round
          (Bmc.unknown_reason_to_string reason)
          stats.Bmc.depth_reached
  in
  refine 1 [];
  Format.printf
    "@.(Suppressing a register via architectural_state_eq is the exploration\n\
     technique of Sec. 4.1; the real fix is to flush it, cf. examples/quickstart.exe.)@."

(* Quickstart: find a covert channel in a toy DUT, root-cause it, fix it
   with a flush, and prove the fix.

   The DUT is a tiny lookup engine with a hidden [stash] register: a
   process can capture a value into the stash and a later process can
   probe it. AutoCC finds this automatically from nothing but the
   module's interface.

   Run with: dune exec examples/quickstart.exe *)

module Signal = Rtl.Signal
open Signal

(* A DUT as a user would describe it: inputs, outputs, registers. *)
let leaky_dut () =
  let din = input "din" 8 in
  let capture = input "capture" 1 in
  let query = input "query" 8 in
  let stash = reg "stash" 8 in
  reg_set_next stash (mux2 capture din stash);
  Rtl.Circuit.create ~name:"lookup_engine"
    ~outputs:[ ("hit", query ==: stash) ]
    ()

let () =
  let dut = leaky_dut () in
  Format.printf "DUT under test: %a@.@." Rtl.Circuit.pp_stats dut;

  (* Phase 1 (Fig. 2 (1)): generate the FPV testbench. Two universes run
     arbitrary victim executions. *)
  Format.printf "[1] Generating the AutoCC FPV testbench (two universes)...@.";
  let ft = Autocc.Ft.generate ~threshold:2 dut in
  Format.printf "    wrapper: %a@.@." Rtl.Circuit.pp_stats ft.Autocc.Ft.wrapper;

  (* Phase 2 (Fig. 2 (2)): the context switch converges the architectural
     state; phase 3 (Fig. 2 (3)): the spy runs with equal inputs and the
     outputs are checked for equality. *)
  Format.printf "[2] Searching for execution differences (BMC)...@.";
  (match Autocc.Ft.check ~max_depth:12 ft with
  | Bmc.Cex (cex, stats) ->
      Format.printf "    covert channel found in %.2fs!@.@." stats.Bmc.solve_time;
      Autocc.Report.explain Format.std_formatter ft cex
  | Bmc.Bounded_proof _ -> Format.printf "    unexpectedly clean!@."
  | Bmc.Unknown (reason, _) ->
      Format.printf "    inconclusive (%s)?!@."
        (Bmc.unknown_reason_to_string reason));

  (* Phase 4: fix the RTL — flush the stash during the context switch —
     and re-run AutoCC to validate the fix, as in Sec. 4's (b)/(c). *)
  Format.printf "@.[3] Applying the RTL fix (flush the stash) and re-checking...@.";
  let fixed = Autocc.Flush.instrument ~regs:[ "stash" ] (leaky_dut ()) in
  let ft' =
    Autocc.Ft.generate ~threshold:2
      ~flush_done:(Autocc.Flush.flush_done_of_input ())
      fixed
  in
  match Autocc.Ft.check ~max_depth:12 ft' with
  | Bmc.Bounded_proof stats ->
      Format.printf
        "    no counterexample up to depth %d (%.2fs in the solver): the flush closes the channel.@."
        stats.Bmc.depth_reached stats.Bmc.solve_time
  | Bmc.Cex (cex, _) ->
      Format.printf "    still leaking: %s@." (Autocc.Report.summary ft' cex)
  | Bmc.Unknown (reason, _) ->
      Format.printf "    inconclusive (%s)?!@."
        (Bmc.unknown_reason_to_string reason)

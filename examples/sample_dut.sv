// A small request/response engine with two covert channels, written in
// plain SystemVerilog for the frontend flow (examples/from_verilog.exe and
// `autocc analyze --verilog examples/sample_dut.sv`).
//
// Channel 1: the last key written is never cleared between processes and
// a later probe reveals whether a guess matches it.
// Channel 2: the response latency depends on a mode register that also
// survives the context switch.
module keybox (
  input wire clk,
  input wire rst,
  //AutoCC Common
  input wire [1:0] trace_level,
  input wire req_valid,
  input wire [7:0] req_guess,
  input wire req_set_key,
  input wire req_set_slow,
  output wire resp_valid,
  output wire [7:0] resp_data,
  output wire [1:0] trace_echo
);

  reg [7:0] key;
  reg slow_mode;
  reg [1:0] delay;
  reg pending;
  reg match_r;

  wire accept = req_valid && !pending;
  wire is_probe = accept && !req_set_key && !req_set_slow;
  wire done = pending && (delay == 2'd0);

  always_ff @(posedge clk) begin
    if (rst) begin
      key <= 8'h00;
      slow_mode <= 1'b0;
      delay <= 2'd0;
      pending <= 1'b0;
      match_r <= 1'b0;
    end else begin
      key <= (accept && req_set_key) ? req_guess : key;
      slow_mode <= (accept && req_set_slow) ? req_guess[0] : slow_mode;
      pending <= is_probe ? 1'b1 : (done ? 1'b0 : pending);
      delay <= is_probe ? (slow_mode ? 2'd3 : 2'd1) : (pending ? delay - 2'd1 : delay);
      match_r <= is_probe ? (req_guess == key) : match_r;
    end
  end

  assign resp_valid = done;
  assign resp_data = done ? {7'd0, match_r} : 8'd0;
  assign trace_echo = trace_level;

endmodule
